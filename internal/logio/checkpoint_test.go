package logio

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"digfl/internal/core"
	"digfl/internal/dataset"
	"digfl/internal/faults"
	"digfl/internal/hfl"
	"digfl/internal/nn"
	"digfl/internal/tensor"
	"digfl/internal/vfl"
)

// faultedHFLCheckpoint trains under dropout with checkpointing and captures
// the last checkpoint together with the online estimator's state.
func faultedHFLCheckpoint(t *testing.T) (*HFLCheckpoint, int) {
	t.Helper()
	log := hflLog(t)
	n, p := len(log[0].Deltas), len(log[0].Theta)
	est := core.NewHFLEstimator(n, p, core.ResourceSaving, nil)
	for _, ep := range log {
		est.Observe(ep)
	}
	ck := &HFLCheckpoint{
		Trainer: hfl.Checkpoint{
			Epoch:        len(log),
			Theta:        log[len(log)-1].Theta,
			ValLossCurve: make([]float64, len(log)+1),
			Log:          log,
		},
		Estimator: est.State(),
	}
	for i := range ck.Trainer.ValLossCurve {
		ck.Trainer.ValLossCurve[i] = 1 / float64(i+1)
	}
	return ck, p
}

func TestHFLCheckpointRoundTrip(t *testing.T) {
	ck, p := faultedHFLCheckpoint(t)
	var buf bytes.Buffer
	if err := WriteHFLCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHFLCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("HFL checkpoint round trip is not bit-exact")
	}
	// The restored estimator state must reinstall cleanly and continue.
	n := len(ck.Estimator.Totals)
	est := core.NewHFLEstimator(n, p, core.ResourceSaving, nil)
	if err := est.SetState(got.Estimator); err != nil {
		t.Fatalf("restored state rejected: %v", err)
	}
	if !reflect.DeepEqual(est.Attribution().Totals, ck.Estimator.Totals) {
		t.Fatal("restored attribution differs")
	}
}

func TestHFLCheckpointRoundTripNonFinite(t *testing.T) {
	ck, _ := faultedHFLCheckpoint(t)
	// A diverged run: poison model, curve, estimator state and one delta.
	ck.Trainer.Theta[0] = math.NaN()
	ck.Trainer.Theta[1] = math.Inf(1)
	ck.Trainer.ValLossCurve[0] = math.Inf(-1)
	ck.Estimator.Totals[0] = math.NaN()
	ck.Estimator.PerEpoch[0][1] = math.Inf(1)
	ck.Trainer.Log[0].Deltas[0][0] = math.NaN()
	ck.Trainer.Log[0].Theta[0] = math.NaN()

	var buf bytes.Buffer
	if err := WriteHFLCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"NaN"`) {
		t.Fatal("non-finite floats should serialize as sentinels")
	}
	got, err := ReadHFLCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Trainer.Theta[0]) || !math.IsInf(got.Trainer.Theta[1], 1) {
		t.Fatal("theta sentinels lost")
	}
	if !math.IsInf(got.Trainer.ValLossCurve[0], -1) {
		t.Fatal("curve sentinel lost")
	}
	if !math.IsNaN(got.Estimator.Totals[0]) || !math.IsInf(got.Estimator.PerEpoch[0][1], 1) {
		t.Fatal("estimator sentinels lost")
	}
	if !math.IsNaN(got.Trainer.Log[0].Deltas[0][0]) {
		t.Fatal("log delta sentinel lost")
	}
}

func TestHFLCheckpointInteractiveState(t *testing.T) {
	ck, p := faultedHFLCheckpoint(t)
	n := len(ck.Estimator.Totals)
	// Hand-build an Interactive-shaped state (with a ΔG-sum) and round-trip.
	ck.Estimator.DeltaGSum = make([][]float64, n)
	for i := range ck.Estimator.DeltaGSum {
		ck.Estimator.DeltaGSum[i] = make([]float64, p)
		ck.Estimator.DeltaGSum[i][0] = float64(i) + 0.5
	}
	var buf bytes.Buffer
	if err := WriteHFLCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHFLCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Estimator.DeltaGSum, ck.Estimator.DeltaGSum) {
		t.Fatal("ΔG-sum round trip lost data")
	}
}

func TestVFLCheckpointRoundTrip(t *testing.T) {
	log, blocks := vflLog(t)
	p := len(log[0].Theta)
	est := core.NewVFLEstimator(blocks, p, core.ResourceSaving, nil)
	for _, ep := range log {
		est.Observe(ep)
	}
	curve := make([]float64, len(log)+1)
	for i := range curve {
		curve[i] = float64(i)
	}
	ck := &VFLCheckpoint{
		Trainer: vfl.Checkpoint{
			Epoch: len(log), Theta: log[len(log)-1].Theta,
			ValLossCurve: curve, Log: log,
		},
		Estimator: est.State(),
	}
	var buf bytes.Buffer
	if err := WriteVFLCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVFLCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("VFL checkpoint round trip is not bit-exact")
	}
}

func TestCheckpointWithoutEstimator(t *testing.T) {
	ck, _ := faultedHFLCheckpoint(t)
	ck.Estimator = nil
	ck.Trainer.Log = nil // KeepLog off
	var buf bytes.Buffer
	if err := WriteHFLCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHFLCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimator != nil || got.Trainer.Log != nil {
		t.Fatal("absent estimator/log should read back absent")
	}
	if !reflect.DeepEqual(got.Trainer.Theta, ck.Trainer.Theta) {
		t.Fatal("theta lost")
	}
}

func TestCheckpointValidation(t *testing.T) {
	ck, _ := faultedHFLCheckpoint(t)
	var buf bytes.Buffer
	if err := WriteHFLCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVFLCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("VFL reader accepted an HFL checkpoint")
	}
	bad := *ck
	bad.Trainer.Epoch = 0
	if err := WriteHFLCheckpoint(&bytes.Buffer{}, &bad); err == nil {
		t.Fatal("epoch-0 checkpoint accepted")
	}
	bad = *ck
	bad.Trainer.ValLossCurve = bad.Trainer.ValLossCurve[:1]
	if err := WriteHFLCheckpoint(&bytes.Buffer{}, &bad); err == nil {
		t.Fatal("truncated curve accepted")
	}
}

// Degraded epochs — including an all-dropped one — survive the log and
// checkpoint round trips, and fault-free logs stay byte-identical to logs
// written before the Reported field existed.
func TestReportedRoundTrip(t *testing.T) {
	log := hflLog(t)
	// Make epoch 2 degraded (survivors 0 and 2) and epoch 3 all-dropped.
	log[1].Deltas = [][]float64{log[1].Deltas[0], log[1].Deltas[2]}
	log[1].Reported = []int{0, 2}
	log[2].Deltas = nil
	log[2].Reported = []int{}

	var buf bytes.Buffer
	if err := WriteHFL(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHFL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Reported != nil {
		t.Fatal("full epoch gained a Reported list")
	}
	if !reflect.DeepEqual(got[1].Reported, []int{0, 2}) {
		t.Fatalf("survivor list lost: %v", got[1].Reported)
	}
	if got[2].Reported == nil || len(got[2].Reported) != 0 {
		t.Fatalf("all-dropped epoch must read back as empty non-nil, got %v", got[2].Reported)
	}
	if len(got[1].Deltas) != 2 || len(got[2].Deltas) != 0 {
		t.Fatal("survivor delta counts lost")
	}

	// Fault-free serialization must not mention the field at all.
	clean := hflLog(t)
	var cleanBuf bytes.Buffer
	if err := WriteHFL(&cleanBuf, clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cleanBuf.String(), "Reported") {
		t.Fatal("fault-free log serializes the Reported field")
	}
}

func TestReportedRejectsOutOfRange(t *testing.T) {
	log := hflLog(t)
	log[1].Deltas = log[1].Deltas[:1]
	log[1].Reported = []int{7} // only 3 parties exist in epoch 1's full record
	var buf bytes.Buffer
	err := WriteHFL(&buf, log)
	if err == nil {
		t.Fatal("out-of-range survivor index accepted")
	}
}

// A degraded VFL log round-trips its Reported lists too.
func TestVFLReportedRoundTrip(t *testing.T) {
	log, _ := vflLog(t)
	log[1].Reported = []int{1, 2}
	var buf bytes.Buffer
	if err := WriteVFL(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVFL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[1].Reported, []int{1, 2}) || got[0].Reported != nil {
		t.Fatal("VFL Reported round trip failed")
	}
}

// Training under real injected dropout, checkpointing through the real
// serializer, must resume bit-identically — the end-to-end wiring of
// trainer, estimator, and file format.
func TestCheckpointFileResume(t *testing.T) {
	newTrainer := func() *hfl.Trainer {
		rng := tensor.NewRNG(3)
		full := dataset.MNISTLike(300, 3)
		train, val := full.Split(0.2, rng)
		return &hfl.Trainer{
			Model: nn.NewSoftmaxRegression(train.Dim(), train.Classes),
			Parts: dataset.PartitionIID(train, 3, rng),
			Val:   val,
			Cfg:   hfl.Config{Epochs: 8, LR: 0.3, KeepLog: true},
		}
	}
	fcfg := faults.Config{Seed: 4, Dropout: 0.3, CrashEpoch: 5}

	ref := newTrainer()
	ref.Cfg.Faults = faults.MustNew(fcfg).WithoutCrash()
	want, err := ref.RunE()
	if err != nil {
		t.Fatal(err)
	}

	var file bytes.Buffer
	crash := newTrainer()
	crash.Cfg.Faults = faults.MustNew(fcfg)
	crash.Cfg.CheckpointEvery = 2
	crash.Cfg.CheckpointFunc = func(ck *hfl.Checkpoint) error {
		file.Reset()
		return WriteHFLCheckpoint(&file, &HFLCheckpoint{Trainer: *ck})
	}
	if _, err := crash.RunE(); err == nil {
		t.Fatal("expected injected crash")
	}

	restored, err := ReadHFLCheckpoint(&file)
	if err != nil {
		t.Fatal(err)
	}
	resume := newTrainer()
	resume.Cfg.Faults = faults.MustNew(fcfg).WithoutCrash()
	resume.Cfg.Resume = &restored.Trainer
	got, err := resume.RunE()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Model.Params(), got.Model.Params()) {
		t.Fatal("file-mediated resume is not bit-identical")
	}
	if !reflect.DeepEqual(want.ValLossCurve, got.ValLossCurve) {
		t.Fatal("file-mediated resume changed the loss curve")
	}
	if len(want.Log) != len(got.Log) {
		t.Fatalf("log lengths differ: %d vs %d", len(want.Log), len(got.Log))
	}
	for i := range want.Log {
		if !reflect.DeepEqual(want.Log[i], got.Log[i]) {
			t.Fatalf("log epoch %d differs after file-mediated resume", i+1)
		}
	}
}
