// Package logio persists federated training logs. DIG-FL's whole premise is
// that contributions are computable from the training log alone, so a
// production deployment wants to archive the log during training and run
// (or re-run) contribution evaluation offline — after choosing a different
// estimator variant, with a refreshed validation set, or for audit. The
// format is line-delimited JSON: one header line, then one line per epoch,
// so logs can be streamed and appended.
//
// Format version 2 encodes non-finite floats (NaN, ±Inf — routine in the
// logs of diverged runs) as the string sentinels "NaN", "+Inf" and "-Inf",
// since encoding/json refuses to marshal them as numbers and a plain encoder
// would abort mid-stream, truncating the file after the header. Readers
// accept both version 1 (finite floats only) and version 2. The sentinel
// encoding itself lives in internal/jsonf, shared with the observability
// trace (internal/obs).
package logio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"digfl/internal/hfl"
	"digfl/internal/jsonf"
	"digfl/internal/vfl"
)

// header identifies the log kind and pins the shape so a reader can fail
// fast on mismatched files.
type header struct {
	Format  string `json:"format"` // "digfl-hfl-log" or "digfl-vfl-log"
	Version int    `json:"version"`
	Params  int    `json:"params"`
	Parties int    `json:"parties"`
}

const (
	formatHFL = "digfl-hfl-log"
	formatVFL = "digfl-vfl-log"
	// version is the write version. Version 2 added the non-finite float
	// sentinels; version-1 files (plain numbers everywhere) remain
	// readable.
	version = 2
)

// hflEpochJSON mirrors hfl.Epoch field-for-field (same JSON keys as the
// version-1 direct encoding) with sentinel-aware floats. Reported is a
// pointer so the nil (full-participation) case is omitted entirely —
// fault-free logs stay byte-identical to pre-fault-tolerance writers —
// while an all-dropped epoch's empty-but-present list survives the round
// trip.
type hflEpochJSON struct {
	T        int
	Theta    jsonf.Vec
	Deltas   []jsonf.Vec
	LR       jsonf.F64
	ValGrad  jsonf.Vec
	ValLoss  jsonf.F64
	Weights  jsonf.Vec
	Reported *[]int `json:"Reported,omitempty"`
}

func toHFLJSON(ep *hfl.Epoch) *hflEpochJSON {
	deltas := make([]jsonf.Vec, len(ep.Deltas))
	for i, d := range ep.Deltas {
		deltas[i] = jsonf.Vec(d)
	}
	j := &hflEpochJSON{
		T: ep.T, Theta: jsonf.Vec(ep.Theta), Deltas: deltas, LR: jsonf.F64(ep.LR),
		ValGrad: jsonf.Vec(ep.ValGrad), ValLoss: jsonf.F64(ep.ValLoss), Weights: jsonf.Vec(ep.Weights),
	}
	if ep.Reported != nil {
		j.Reported = &ep.Reported
	}
	return j
}

func (j *hflEpochJSON) epoch() *hfl.Epoch {
	deltas := make([][]float64, len(j.Deltas))
	for i, d := range j.Deltas {
		deltas[i] = d
	}
	ep := &hfl.Epoch{
		T: j.T, Theta: j.Theta, Deltas: deltas, LR: float64(j.LR),
		ValGrad: j.ValGrad, ValLoss: float64(j.ValLoss), Weights: j.Weights,
	}
	if j.Reported != nil {
		ep.Reported = *j.Reported
		if ep.Reported == nil {
			ep.Reported = []int{}
		}
	}
	return ep
}

// vflEpochJSON mirrors vfl.Epoch likewise.
type vflEpochJSON struct {
	T        int
	Theta    jsonf.Vec
	Grad     jsonf.Vec
	LR       jsonf.F64
	ValGrad  jsonf.Vec
	ValLoss  jsonf.F64
	Weights  jsonf.Vec
	Reported *[]int `json:"Reported,omitempty"`
}

func toVFLJSON(ep *vfl.Epoch) *vflEpochJSON {
	j := &vflEpochJSON{
		T: ep.T, Theta: jsonf.Vec(ep.Theta), Grad: jsonf.Vec(ep.Grad), LR: jsonf.F64(ep.LR),
		ValGrad: jsonf.Vec(ep.ValGrad), ValLoss: jsonf.F64(ep.ValLoss), Weights: jsonf.Vec(ep.Weights),
	}
	if ep.Reported != nil {
		j.Reported = &ep.Reported
	}
	return j
}

func (j *vflEpochJSON) epoch() *vfl.Epoch {
	ep := &vfl.Epoch{
		T: j.T, Theta: j.Theta, Grad: j.Grad, LR: float64(j.LR),
		ValGrad: j.ValGrad, ValLoss: float64(j.ValLoss), Weights: j.Weights,
	}
	if j.Reported != nil {
		ep.Reported = *j.Reported
		if ep.Reported == nil {
			ep.Reported = []int{}
		}
	}
	return ep
}

// hflParties derives the header party count: the delta count of any
// full-participation epoch, or — in a log where every epoch is degraded —
// the highest reported participant index plus one.
func hflParties(log []*hfl.Epoch) int {
	parties := 0
	for _, ep := range log {
		if ep.Reported == nil {
			if len(ep.Deltas) > parties {
				parties = len(ep.Deltas)
			}
			continue
		}
		for _, i := range ep.Reported {
			if i+1 > parties {
				parties = i + 1
			}
		}
	}
	return parties
}

// checkHFLShape validates one epoch against the header shape: a
// full-participation epoch carries one delta per party; a degraded epoch
// carries one delta per survivor, with survivor indices inside [0, parties).
func checkHFLShape(ep *hfl.Epoch, h header) error {
	if len(ep.Theta) != h.Params {
		return errors.New("theta length drifts from header")
	}
	if ep.Reported == nil {
		if len(ep.Deltas) != h.Parties {
			return errors.New("delta count drifts from header")
		}
		return nil
	}
	if len(ep.Deltas) != len(ep.Reported) {
		return fmt.Errorf("degraded epoch carries %d deltas for %d survivors", len(ep.Deltas), len(ep.Reported))
	}
	for _, i := range ep.Reported {
		if i < 0 || i >= h.Parties {
			return fmt.Errorf("reported party %d out of range [0,%d)", i, h.Parties)
		}
	}
	return nil
}

// WriteHFL serializes an HFL training log.
func WriteHFL(w io.Writer, log []*hfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty HFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatHFL, Version: version,
		Params: len(log[0].Theta), Parties: hflParties(log)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if err := checkHFLShape(ep, h); err != nil {
			return fmt.Errorf("logio: epoch %d shape drifts from header: %w", i, err)
		}
		if err := enc.Encode(toHFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadHFL deserializes an HFL training log (version 1 or 2), validating
// shapes.
func ReadHFL(r io.Reader) ([]*hfl.Epoch, error) {
	h, dec, err := readHeader(r, formatHFL)
	if err != nil {
		return nil, err
	}
	var log []*hfl.Epoch
	for {
		rec := &hflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		ep := rec.epoch()
		if len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if err := checkHFLShape(ep, h); err != nil {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch: %w", len(log), err)
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

// WriteVFL serializes a VFL training log.
func WriteVFL(w io.Writer, log []*vfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty VFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatVFL, Version: version, Params: len(log[0].Theta)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(toVFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadVFL deserializes a VFL training log (version 1 or 2), validating
// shapes.
func ReadVFL(r io.Reader) ([]*vfl.Epoch, error) {
	h, dec, err := readHeader(r, formatVFL)
	if err != nil {
		return nil, err
	}
	var log []*vfl.Epoch
	for {
		rec := &vflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		ep := rec.epoch()
		if len(ep.Theta) != h.Params || len(ep.Grad) != h.Params || len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

func readHeader(r io.Reader, wantFormat string) (header, *json.Decoder, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("logio: reading header: %w", err)
	}
	if h.Format != wantFormat {
		return h, nil, fmt.Errorf("logio: format %q, want %q", h.Format, wantFormat)
	}
	if h.Version < 1 || h.Version > version {
		return h, nil, fmt.Errorf("logio: unsupported version %d", h.Version)
	}
	if h.Params <= 0 {
		return h, nil, fmt.Errorf("logio: invalid header params %d", h.Params)
	}
	return h, dec, nil
}
