// Package logio persists federated training logs. DIG-FL's whole premise is
// that contributions are computable from the training log alone, so a
// production deployment wants to archive the log during training and run
// (or re-run) contribution evaluation offline — after choosing a different
// estimator variant, with a refreshed validation set, or for audit. The
// format is line-delimited JSON: one header line, then one line per epoch,
// so logs can be streamed and appended.
package logio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"digfl/internal/hfl"
	"digfl/internal/vfl"
)

// header identifies the log kind and pins the shape so a reader can fail
// fast on mismatched files.
type header struct {
	Format  string `json:"format"` // "digfl-hfl-log" or "digfl-vfl-log"
	Version int    `json:"version"`
	Params  int    `json:"params"`
	Parties int    `json:"parties"`
}

const (
	formatHFL = "digfl-hfl-log"
	formatVFL = "digfl-vfl-log"
	version   = 1
)

// WriteHFL serializes an HFL training log.
func WriteHFL(w io.Writer, log []*hfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty HFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatHFL, Version: version,
		Params: len(log[0].Theta), Parties: len(log[0].Deltas)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params || len(ep.Deltas) != h.Parties {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(ep); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadHFL deserializes an HFL training log, validating shapes.
func ReadHFL(r io.Reader) ([]*hfl.Epoch, error) {
	h, dec, err := readHeader(r, formatHFL)
	if err != nil {
		return nil, err
	}
	var log []*hfl.Epoch
	for {
		ep := &hfl.Epoch{}
		if err := dec.Decode(ep); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		if len(ep.Theta) != h.Params || len(ep.ValGrad) != h.Params || len(ep.Deltas) != h.Parties {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

// WriteVFL serializes a VFL training log.
func WriteVFL(w io.Writer, log []*vfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty VFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatVFL, Version: version, Params: len(log[0].Theta)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(ep); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadVFL deserializes a VFL training log, validating shapes.
func ReadVFL(r io.Reader) ([]*vfl.Epoch, error) {
	h, dec, err := readHeader(r, formatVFL)
	if err != nil {
		return nil, err
	}
	var log []*vfl.Epoch
	for {
		ep := &vfl.Epoch{}
		if err := dec.Decode(ep); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		if len(ep.Theta) != h.Params || len(ep.Grad) != h.Params || len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

func readHeader(r io.Reader, wantFormat string) (header, *json.Decoder, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("logio: reading header: %w", err)
	}
	if h.Format != wantFormat {
		return h, nil, fmt.Errorf("logio: format %q, want %q", h.Format, wantFormat)
	}
	if h.Version != version {
		return h, nil, fmt.Errorf("logio: unsupported version %d", h.Version)
	}
	if h.Params <= 0 {
		return h, nil, fmt.Errorf("logio: invalid header params %d", h.Params)
	}
	return h, dec, nil
}
