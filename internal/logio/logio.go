// Package logio persists federated training logs. DIG-FL's whole premise is
// that contributions are computable from the training log alone, so a
// production deployment wants to archive the log during training and run
// (or re-run) contribution evaluation offline — after choosing a different
// estimator variant, with a refreshed validation set, or for audit. The
// format is line-delimited JSON: one header line, then one line per epoch,
// so logs can be streamed and appended.
//
// Format version 2 encodes non-finite floats (NaN, ±Inf — routine in the
// logs of diverged runs) as the string sentinels "NaN", "+Inf" and "-Inf",
// since encoding/json refuses to marshal them as numbers and a plain encoder
// would abort mid-stream, truncating the file after the header. Readers
// accept both version 1 (finite floats only) and version 2. The sentinel
// encoding itself lives in internal/jsonf, shared with the observability
// trace (internal/obs).
package logio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"digfl/internal/hfl"
	"digfl/internal/jsonf"
	"digfl/internal/vfl"
)

// header identifies the log kind and pins the shape so a reader can fail
// fast on mismatched files.
type header struct {
	Format  string `json:"format"` // "digfl-hfl-log" or "digfl-vfl-log"
	Version int    `json:"version"`
	Params  int    `json:"params"`
	Parties int    `json:"parties"`
}

const (
	formatHFL = "digfl-hfl-log"
	formatVFL = "digfl-vfl-log"
	// version is the write version. Version 2 added the non-finite float
	// sentinels; version-1 files (plain numbers everywhere) remain
	// readable.
	version = 2
)

// hflEpochJSON mirrors hfl.Epoch field-for-field (same JSON keys as the
// version-1 direct encoding) with sentinel-aware floats.
type hflEpochJSON struct {
	T       int
	Theta   jsonf.Vec
	Deltas  []jsonf.Vec
	LR      jsonf.F64
	ValGrad jsonf.Vec
	ValLoss jsonf.F64
	Weights jsonf.Vec
}

func toHFLJSON(ep *hfl.Epoch) *hflEpochJSON {
	deltas := make([]jsonf.Vec, len(ep.Deltas))
	for i, d := range ep.Deltas {
		deltas[i] = jsonf.Vec(d)
	}
	return &hflEpochJSON{
		T: ep.T, Theta: jsonf.Vec(ep.Theta), Deltas: deltas, LR: jsonf.F64(ep.LR),
		ValGrad: jsonf.Vec(ep.ValGrad), ValLoss: jsonf.F64(ep.ValLoss), Weights: jsonf.Vec(ep.Weights),
	}
}

func (j *hflEpochJSON) epoch() *hfl.Epoch {
	deltas := make([][]float64, len(j.Deltas))
	for i, d := range j.Deltas {
		deltas[i] = d
	}
	return &hfl.Epoch{
		T: j.T, Theta: j.Theta, Deltas: deltas, LR: float64(j.LR),
		ValGrad: j.ValGrad, ValLoss: float64(j.ValLoss), Weights: j.Weights,
	}
}

// vflEpochJSON mirrors vfl.Epoch likewise.
type vflEpochJSON struct {
	T       int
	Theta   jsonf.Vec
	Grad    jsonf.Vec
	LR      jsonf.F64
	ValGrad jsonf.Vec
	ValLoss jsonf.F64
	Weights jsonf.Vec
}

func toVFLJSON(ep *vfl.Epoch) *vflEpochJSON {
	return &vflEpochJSON{
		T: ep.T, Theta: jsonf.Vec(ep.Theta), Grad: jsonf.Vec(ep.Grad), LR: jsonf.F64(ep.LR),
		ValGrad: jsonf.Vec(ep.ValGrad), ValLoss: jsonf.F64(ep.ValLoss), Weights: jsonf.Vec(ep.Weights),
	}
}

func (j *vflEpochJSON) epoch() *vfl.Epoch {
	return &vfl.Epoch{
		T: j.T, Theta: j.Theta, Grad: j.Grad, LR: float64(j.LR),
		ValGrad: j.ValGrad, ValLoss: float64(j.ValLoss), Weights: j.Weights,
	}
}

// WriteHFL serializes an HFL training log.
func WriteHFL(w io.Writer, log []*hfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty HFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatHFL, Version: version,
		Params: len(log[0].Theta), Parties: len(log[0].Deltas)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params || len(ep.Deltas) != h.Parties {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(toHFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadHFL deserializes an HFL training log (version 1 or 2), validating
// shapes.
func ReadHFL(r io.Reader) ([]*hfl.Epoch, error) {
	h, dec, err := readHeader(r, formatHFL)
	if err != nil {
		return nil, err
	}
	var log []*hfl.Epoch
	for {
		rec := &hflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		ep := rec.epoch()
		if len(ep.Theta) != h.Params || len(ep.ValGrad) != h.Params || len(ep.Deltas) != h.Parties {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

// WriteVFL serializes a VFL training log.
func WriteVFL(w io.Writer, log []*vfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty VFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatVFL, Version: version, Params: len(log[0].Theta)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(toVFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadVFL deserializes a VFL training log (version 1 or 2), validating
// shapes.
func ReadVFL(r io.Reader) ([]*vfl.Epoch, error) {
	h, dec, err := readHeader(r, formatVFL)
	if err != nil {
		return nil, err
	}
	var log []*vfl.Epoch
	for {
		rec := &vflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		ep := rec.epoch()
		if len(ep.Theta) != h.Params || len(ep.Grad) != h.Params || len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

func readHeader(r io.Reader, wantFormat string) (header, *json.Decoder, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("logio: reading header: %w", err)
	}
	if h.Format != wantFormat {
		return h, nil, fmt.Errorf("logio: format %q, want %q", h.Format, wantFormat)
	}
	if h.Version < 1 || h.Version > version {
		return h, nil, fmt.Errorf("logio: unsupported version %d", h.Version)
	}
	if h.Params <= 0 {
		return h, nil, fmt.Errorf("logio: invalid header params %d", h.Params)
	}
	return h, dec, nil
}
