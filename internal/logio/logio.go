// Package logio persists federated training logs. DIG-FL's whole premise is
// that contributions are computable from the training log alone, so a
// production deployment wants to archive the log during training and run
// (or re-run) contribution evaluation offline — after choosing a different
// estimator variant, with a refreshed validation set, or for audit. The
// format is line-delimited JSON: one header line, then one line per epoch,
// so logs can be streamed and appended.
//
// Format version 2 encodes non-finite floats (NaN, ±Inf — routine in the
// logs of diverged runs) as the string sentinels "NaN", "+Inf" and "-Inf",
// since encoding/json refuses to marshal them as numbers and a plain encoder
// would abort mid-stream, truncating the file after the header. Readers
// accept both version 1 (finite floats only) and version 2.
package logio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"digfl/internal/hfl"
	"digfl/internal/vfl"
)

// header identifies the log kind and pins the shape so a reader can fail
// fast on mismatched files.
type header struct {
	Format  string `json:"format"` // "digfl-hfl-log" or "digfl-vfl-log"
	Version int    `json:"version"`
	Params  int    `json:"params"`
	Parties int    `json:"parties"`
}

const (
	formatHFL = "digfl-hfl-log"
	formatVFL = "digfl-vfl-log"
	// version is the write version. Version 2 added the non-finite float
	// sentinels; version-1 files (plain numbers everywhere) remain
	// readable.
	version = 2
)

// f64 is a float64 that survives JSON round-trips even when non-finite.
type f64 float64

func (f f64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *f64) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = f64(math.NaN())
		case "+Inf":
			*f = f64(math.Inf(1))
		case "-Inf":
			*f = f64(math.Inf(-1))
		default:
			return fmt.Errorf("unknown float sentinel %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = f64(v)
	return nil
}

// vec is a []float64 carried through JSON with sentinel-aware elements;
// nil round-trips as null.
type vec []float64

func (v vec) MarshalJSON() ([]byte, error) {
	if v == nil {
		return []byte("null"), nil
	}
	out := make([]f64, len(v))
	for i, x := range v {
		out[i] = f64(x)
	}
	return json.Marshal(out)
}

func (v *vec) UnmarshalJSON(b []byte) error {
	var raw []f64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if raw == nil {
		*v = nil
		return nil
	}
	out := make([]float64, len(raw))
	for i, x := range raw {
		out[i] = float64(x)
	}
	*v = out
	return nil
}

// hflEpochJSON mirrors hfl.Epoch field-for-field (same JSON keys as the
// version-1 direct encoding) with sentinel-aware floats.
type hflEpochJSON struct {
	T       int
	Theta   vec
	Deltas  []vec
	LR      f64
	ValGrad vec
	ValLoss f64
	Weights vec
}

func toHFLJSON(ep *hfl.Epoch) *hflEpochJSON {
	deltas := make([]vec, len(ep.Deltas))
	for i, d := range ep.Deltas {
		deltas[i] = vec(d)
	}
	return &hflEpochJSON{
		T: ep.T, Theta: vec(ep.Theta), Deltas: deltas, LR: f64(ep.LR),
		ValGrad: vec(ep.ValGrad), ValLoss: f64(ep.ValLoss), Weights: vec(ep.Weights),
	}
}

func (j *hflEpochJSON) epoch() *hfl.Epoch {
	deltas := make([][]float64, len(j.Deltas))
	for i, d := range j.Deltas {
		deltas[i] = d
	}
	return &hfl.Epoch{
		T: j.T, Theta: j.Theta, Deltas: deltas, LR: float64(j.LR),
		ValGrad: j.ValGrad, ValLoss: float64(j.ValLoss), Weights: j.Weights,
	}
}

// vflEpochJSON mirrors vfl.Epoch likewise.
type vflEpochJSON struct {
	T       int
	Theta   vec
	Grad    vec
	LR      f64
	ValGrad vec
	ValLoss f64
	Weights vec
}

func toVFLJSON(ep *vfl.Epoch) *vflEpochJSON {
	return &vflEpochJSON{
		T: ep.T, Theta: vec(ep.Theta), Grad: vec(ep.Grad), LR: f64(ep.LR),
		ValGrad: vec(ep.ValGrad), ValLoss: f64(ep.ValLoss), Weights: vec(ep.Weights),
	}
}

func (j *vflEpochJSON) epoch() *vfl.Epoch {
	return &vfl.Epoch{
		T: j.T, Theta: j.Theta, Grad: j.Grad, LR: float64(j.LR),
		ValGrad: j.ValGrad, ValLoss: float64(j.ValLoss), Weights: j.Weights,
	}
}

// WriteHFL serializes an HFL training log.
func WriteHFL(w io.Writer, log []*hfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty HFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatHFL, Version: version,
		Params: len(log[0].Theta), Parties: len(log[0].Deltas)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params || len(ep.Deltas) != h.Parties {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(toHFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadHFL deserializes an HFL training log (version 1 or 2), validating
// shapes.
func ReadHFL(r io.Reader) ([]*hfl.Epoch, error) {
	h, dec, err := readHeader(r, formatHFL)
	if err != nil {
		return nil, err
	}
	var log []*hfl.Epoch
	for {
		rec := &hflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		ep := rec.epoch()
		if len(ep.Theta) != h.Params || len(ep.ValGrad) != h.Params || len(ep.Deltas) != h.Parties {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

// WriteVFL serializes a VFL training log.
func WriteVFL(w io.Writer, log []*vfl.Epoch) error {
	if len(log) == 0 {
		return errors.New("logio: empty VFL log")
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatVFL, Version: version, Params: len(log[0].Theta)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing header: %w", err)
	}
	for i, ep := range log {
		if len(ep.Theta) != h.Params {
			return fmt.Errorf("logio: epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(toVFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadVFL deserializes a VFL training log (version 1 or 2), validating
// shapes.
func ReadVFL(r io.Reader) ([]*vfl.Epoch, error) {
	h, dec, err := readHeader(r, formatVFL)
	if err != nil {
		return nil, err
	}
	var log []*vfl.Epoch
	for {
		rec := &vflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("logio: reading epoch %d: %w", len(log), err)
		}
		ep := rec.epoch()
		if len(ep.Theta) != h.Params || len(ep.Grad) != h.Params || len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: epoch %d shape mismatch", len(log))
		}
		if ep.T != len(log)+1 {
			return nil, fmt.Errorf("logio: epoch %d out of order (T=%d)", len(log), ep.T)
		}
		log = append(log, ep)
	}
	if len(log) == 0 {
		return nil, errors.New("logio: log has no epochs")
	}
	return log, nil
}

func readHeader(r io.Reader, wantFormat string) (header, *json.Decoder, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("logio: reading header: %w", err)
	}
	if h.Format != wantFormat {
		return h, nil, fmt.Errorf("logio: format %q, want %q", h.Format, wantFormat)
	}
	if h.Version < 1 || h.Version > version {
		return h, nil, fmt.Errorf("logio: unsupported version %d", h.Version)
	}
	if h.Params <= 0 {
		return h, nil, fmt.Errorf("logio: invalid header params %d", h.Params)
	}
	return h, dec, nil
}
