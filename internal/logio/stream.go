package logio

import (
	"encoding/json"
	"fmt"
	"io"

	"digfl/internal/hfl"
)

// HFLWriter archives an HFL training log one epoch at a time — the
// streaming counterpart of WriteHFL for runs that must not buffer the whole
// log in memory (the networked coordinator archives each round as it
// closes). Output is byte-identical to WriteHFL on the same epochs, so
// ReadHFL reads both interchangeably.
//
// Unlike WriteHFL, which derives the header's party count from the finished
// log, the streaming writer needs the run shape up front. Errors are
// sticky: the first failed write poisons the writer and every later call
// returns the same error, so a full disk never corrupts an archive
// mid-line without the caller noticing.
type HFLWriter struct {
	enc    *json.Encoder
	shape  header
	epochs int
	err    error
}

// NewHFLWriter starts a streaming HFL archive on w by writing the header
// line for a run with the given model parameter and participant counts.
func NewHFLWriter(w io.Writer, params, parties int) (*HFLWriter, error) {
	if params <= 0 || parties <= 0 {
		return nil, fmt.Errorf("logio: invalid stream shape params=%d parties=%d", params, parties)
	}
	sw := &HFLWriter{
		enc:   json.NewEncoder(w),
		shape: header{Format: formatHFL, Version: version, Params: params, Parties: parties},
	}
	if err := sw.enc.Encode(sw.shape); err != nil {
		return nil, fmt.Errorf("logio: writing header: %w", err)
	}
	return sw, nil
}

// ResumeHFLWriter continues a streaming HFL archive that already holds its
// header line and the first epochs epoch records — the recovered
// coordinator's path: its write-ahead-log replay reports how many epochs
// the archive already holds, and writing resumes at epochs+1 without
// emitting a second header. Output across the original and resumed writers
// is byte-identical to one uninterrupted HFLWriter.
func ResumeHFLWriter(w io.Writer, params, parties, epochs int) (*HFLWriter, error) {
	if params <= 0 || parties <= 0 {
		return nil, fmt.Errorf("logio: invalid stream shape params=%d parties=%d", params, parties)
	}
	if epochs < 0 {
		return nil, fmt.Errorf("logio: negative resume epoch count %d", epochs)
	}
	return &HFLWriter{
		enc:    json.NewEncoder(w),
		shape:  header{Format: formatHFL, Version: version, Params: params, Parties: parties},
		epochs: epochs,
	}, nil
}

// WriteEpoch appends one epoch record. Epochs must arrive in order starting
// at 1, matching the shape declared at construction.
func (sw *HFLWriter) WriteEpoch(ep *hfl.Epoch) error {
	if sw.err != nil {
		return sw.err
	}
	if ep.T != sw.epochs+1 {
		sw.err = fmt.Errorf("logio: epoch %d written after %d", ep.T, sw.epochs)
		return sw.err
	}
	if err := checkHFLShape(ep, sw.shape); err != nil {
		sw.err = fmt.Errorf("logio: epoch %d shape drifts from header: %w", sw.epochs, err)
		return sw.err
	}
	if err := sw.enc.Encode(toHFLJSON(ep)); err != nil {
		sw.err = fmt.Errorf("logio: writing epoch %d: %w", sw.epochs, err)
		return sw.err
	}
	sw.epochs++
	return nil
}

// Err returns the sticky error, if any.
func (sw *HFLWriter) Err() error { return sw.err }

// Epochs returns the number of epochs written so far.
func (sw *HFLWriter) Epochs() int { return sw.epochs }
