package logio

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"digfl/internal/core"
	"digfl/internal/dataset"
	"digfl/internal/hfl"
	"digfl/internal/nn"
	"digfl/internal/tensor"
	"digfl/internal/vfl"
)

func hflLog(t *testing.T) []*hfl.Epoch {
	t.Helper()
	rng := tensor.NewRNG(1)
	full := dataset.MNISTLike(300, 1)
	train, val := full.Split(0.2, rng)
	tr := &hfl.Trainer{
		Model: nn.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts: dataset.PartitionIID(train, 3, rng),
		Val:   val,
		Cfg:   hfl.Config{Epochs: 4, LR: 0.3, KeepLog: true},
	}
	return tr.Run().Log
}

func vflLog(t *testing.T) ([]*vfl.Epoch, []dataset.Block) {
	t.Helper()
	full := dataset.SynthTabular(dataset.TabularConfig{
		Name: "t", N: 200, D: 6, Task: dataset.Regression, Informative: 4, Noise: 0.2, Seed: 2,
	})
	train, val := full.Split(0.2, tensor.NewRNG(2))
	prob := &vfl.Problem{Train: train, Val: val, Blocks: dataset.VerticalBlocks(6, 3), Kind: vfl.LinReg}
	tr := &vfl.Trainer{Problem: prob, Cfg: vfl.Config{Epochs: 4, LR: 0.05, KeepLog: true}}
	return tr.Run().Log, prob.Blocks
}

func TestHFLRoundTrip(t *testing.T) {
	log := hflLog(t)
	var buf bytes.Buffer
	if err := WriteHFL(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHFL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(log) {
		t.Fatalf("round trip lost epochs: %d vs %d", len(got), len(log))
	}
	for i := range log {
		if got[i].T != log[i].T || got[i].LR != log[i].LR {
			t.Fatalf("epoch %d metadata mismatch", i)
		}
		for j := range log[i].Theta {
			if got[i].Theta[j] != log[i].Theta[j] {
				t.Fatalf("epoch %d theta mismatch", i)
			}
		}
		for k := range log[i].Deltas {
			for j := range log[i].Deltas[k] {
				if got[i].Deltas[k][j] != log[i].Deltas[k][j] {
					t.Fatalf("epoch %d delta mismatch", i)
				}
			}
		}
	}
}

// The whole point: contributions from a reloaded log equal contributions
// from the live log.
func TestHFLOfflineEstimationFromFile(t *testing.T) {
	log := hflLog(t)
	var buf bytes.Buffer
	if err := WriteHFL(&buf, log); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadHFL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := core.EstimateHFL(log, 3, core.ResourceSaving, nil)
	offline := core.EstimateHFL(reloaded, 3, core.ResourceSaving, nil)
	for i := range live.Totals {
		if math.Abs(live.Totals[i]-offline.Totals[i]) > 1e-15 {
			t.Fatal("offline estimate differs from live estimate")
		}
	}
}

func TestVFLRoundTrip(t *testing.T) {
	log, blocks := vflLog(t)
	var buf bytes.Buffer
	if err := WriteVFL(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVFL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := core.EstimateVFL(log, blocks, core.ResourceSaving, nil)
	offline := core.EstimateVFL(got, blocks, core.ResourceSaving, nil)
	for i := range live.Totals {
		if live.Totals[i] != offline.Totals[i] {
			t.Fatal("offline VFL estimate differs")
		}
	}
}

func TestErrors(t *testing.T) {
	log := hflLog(t)
	vlog, _ := vflLog(t)

	if err := WriteHFL(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty HFL log must error")
	}
	if err := WriteVFL(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty VFL log must error")
	}
	// Wrong format header.
	var hbuf, vbuf bytes.Buffer
	if err := WriteHFL(&hbuf, log); err != nil {
		t.Fatal(err)
	}
	if err := WriteVFL(&vbuf, vlog); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVFL(bytes.NewReader(hbuf.Bytes())); err == nil {
		t.Fatal("reading HFL file as VFL must error")
	}
	if _, err := ReadHFL(bytes.NewReader(vbuf.Bytes())); err == nil {
		t.Fatal("reading VFL file as HFL must error")
	}
	// Garbage.
	if _, err := ReadHFL(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	// Header only, no epochs.
	headerOnly := hbuf.String()[:strings.Index(hbuf.String(), "\n")+1]
	if _, err := ReadHFL(strings.NewReader(headerOnly)); err == nil {
		t.Fatal("epoch-less log must error")
	}
	// Truncated epoch line.
	full := hbuf.String()
	cut := full[:len(full)-20]
	if _, err := ReadHFL(strings.NewReader(cut)); err == nil {
		t.Fatal("truncated log must error")
	}
	// Out-of-order epochs.
	reordered := hflLog(t)
	reordered[1].T = 99
	var obuf bytes.Buffer
	if err := WriteHFL(&obuf, reordered); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHFL(&obuf); err == nil {
		t.Fatal("out-of-order epochs must error")
	}
	// Shape drift across epochs.
	drift := hflLog(t)
	drift[2].Deltas = drift[2].Deltas[:1]
	if err := WriteHFL(&bytes.Buffer{}, drift); err == nil {
		t.Fatal("shape drift must error on write")
	}
	// Unsupported version.
	bad := strings.Replace(headerOnly, fmt.Sprintf(`"version":%d`, version), `"version":9`, 1)
	if _, err := ReadHFL(strings.NewReader(bad + full[strings.Index(full, "\n")+1:])); err == nil {
		t.Fatal("future version must error")
	}
}
