package logio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"digfl/internal/core"
	"digfl/internal/hfl"
	"digfl/internal/jsonf"
	"digfl/internal/vfl"
)

// Checkpoint files make crash/resume durable: a trainer configured with
// Config.CheckpointEvery hands periodic snapshots to Config.CheckpointFunc,
// which typically serializes them here; after a crash the snapshot is read
// back and handed to Config.Resume (plus Estimator into
// core.{HFL,VFL}Estimator.SetState), and the resumed run is bit-identical
// to one that never stopped.
//
// The format follows the training-log convention: line-delimited JSON with
// non-finite floats as sentinels (internal/jsonf). One header line, one
// meta line (epoch counter, model, loss curve, estimator state, retained
// log length), then the retained training-log epochs — reusing the exact
// per-epoch encoding of the log format, including the Reported survivor
// lists of degraded epochs.

const (
	formatHFLCkpt = "digfl-hfl-ckpt"
	formatVFLCkpt = "digfl-vfl-ckpt"
	ckptVersion   = 1
)

// HFLCheckpoint bundles everything needed to resume an HFL run: the
// trainer snapshot and, when contribution evaluation runs online alongside
// training, the estimator state (nil when there is no online estimator).
type HFLCheckpoint struct {
	Trainer   hfl.Checkpoint
	Estimator *core.EstimatorState
}

// VFLCheckpoint is the VFL counterpart of HFLCheckpoint.
type VFLCheckpoint struct {
	Trainer   vfl.Checkpoint
	Estimator *core.EstimatorState
}

// estStateJSON mirrors core.EstimatorState with sentinel-aware floats.
type estStateJSON struct {
	LastEpoch int
	PerEpoch  []jsonf.Vec
	Totals    jsonf.Vec
	DeltaGSum []jsonf.Vec `json:",omitempty"`
}

func toEstJSON(s *core.EstimatorState) *estStateJSON {
	if s == nil {
		return nil
	}
	j := &estStateJSON{LastEpoch: s.LastEpoch, Totals: jsonf.Vec(s.Totals)}
	j.PerEpoch = make([]jsonf.Vec, len(s.PerEpoch))
	for i, row := range s.PerEpoch {
		j.PerEpoch[i] = jsonf.Vec(row)
	}
	if s.DeltaGSum != nil {
		j.DeltaGSum = make([]jsonf.Vec, len(s.DeltaGSum))
		for i, row := range s.DeltaGSum {
			j.DeltaGSum[i] = jsonf.Vec(row)
		}
	}
	return j
}

func (j *estStateJSON) state() *core.EstimatorState {
	if j == nil {
		return nil
	}
	s := &core.EstimatorState{LastEpoch: j.LastEpoch, Totals: j.Totals}
	s.PerEpoch = make([][]float64, len(j.PerEpoch))
	for i, row := range j.PerEpoch {
		s.PerEpoch[i] = row
	}
	if j.DeltaGSum != nil {
		s.DeltaGSum = make([][]float64, len(j.DeltaGSum))
		for i, row := range j.DeltaGSum {
			s.DeltaGSum[i] = row
		}
	}
	return s
}

// ckptMeta is the second line of a checkpoint file: the trainer snapshot
// minus the retained log, whose epochs follow as separate lines.
type ckptMeta struct {
	Epoch        int
	Theta        jsonf.Vec
	ValLossCurve jsonf.Vec
	Estimator    *estStateJSON `json:",omitempty"`
	LogLen       int
}

func checkCkptMeta(m *ckptMeta) error {
	if m.Epoch < 1 {
		return fmt.Errorf("logio: checkpoint epoch %d < 1", m.Epoch)
	}
	if len(m.Theta) == 0 {
		return errors.New("logio: checkpoint has no model parameters")
	}
	if len(m.ValLossCurve) != m.Epoch+1 {
		return fmt.Errorf("logio: checkpoint loss curve has %d entries for epoch %d", len(m.ValLossCurve), m.Epoch)
	}
	if m.LogLen != 0 && m.LogLen != m.Epoch {
		return fmt.Errorf("logio: checkpoint retains %d log epochs for epoch %d (want 0 or %d)", m.LogLen, m.Epoch, m.Epoch)
	}
	return nil
}

// WriteHFLCheckpoint serializes an HFL checkpoint.
func WriteHFLCheckpoint(w io.Writer, ck *HFLCheckpoint) error {
	meta := &ckptMeta{Epoch: ck.Trainer.Epoch, Theta: jsonf.Vec(ck.Trainer.Theta),
		ValLossCurve: jsonf.Vec(ck.Trainer.ValLossCurve),
		Estimator:    toEstJSON(ck.Estimator), LogLen: len(ck.Trainer.Log)}
	if err := checkCkptMeta(meta); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatHFLCkpt, Version: ckptVersion,
		Params: len(ck.Trainer.Theta), Parties: hflParties(ck.Trainer.Log)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing checkpoint header: %w", err)
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("logio: writing checkpoint meta: %w", err)
	}
	for i, ep := range ck.Trainer.Log {
		if err := checkHFLShape(ep, h); err != nil {
			return fmt.Errorf("logio: checkpoint epoch %d shape drifts from header: %w", i, err)
		}
		if err := enc.Encode(toHFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing checkpoint epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadHFLCheckpoint deserializes an HFL checkpoint, validating shapes.
func ReadHFLCheckpoint(r io.Reader) (*HFLCheckpoint, error) {
	h, dec, err := readHeader(r, formatHFLCkpt)
	if err != nil {
		return nil, err
	}
	meta := &ckptMeta{}
	if err := dec.Decode(meta); err != nil {
		return nil, fmt.Errorf("logio: reading checkpoint meta: %w", err)
	}
	if err := checkCkptMeta(meta); err != nil {
		return nil, err
	}
	if len(meta.Theta) != h.Params {
		return nil, fmt.Errorf("logio: checkpoint theta has %d params, header says %d", len(meta.Theta), h.Params)
	}
	ck := &HFLCheckpoint{Trainer: hfl.Checkpoint{Epoch: meta.Epoch,
		Theta: meta.Theta, ValLossCurve: meta.ValLossCurve}, Estimator: meta.Estimator.state()}
	for k := 0; k < meta.LogLen; k++ {
		rec := &hflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			return nil, fmt.Errorf("logio: reading checkpoint epoch %d: %w", k, err)
		}
		ep := rec.epoch()
		if len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: checkpoint epoch %d shape mismatch", k)
		}
		if err := checkHFLShape(ep, h); err != nil {
			return nil, fmt.Errorf("logio: checkpoint epoch %d shape mismatch: %w", k, err)
		}
		if ep.T != k+1 {
			return nil, fmt.Errorf("logio: checkpoint epoch %d out of order (T=%d)", k, ep.T)
		}
		ck.Trainer.Log = append(ck.Trainer.Log, ep)
	}
	return ck, nil
}

// WriteVFLCheckpoint serializes a VFL checkpoint.
func WriteVFLCheckpoint(w io.Writer, ck *VFLCheckpoint) error {
	meta := &ckptMeta{Epoch: ck.Trainer.Epoch, Theta: jsonf.Vec(ck.Trainer.Theta),
		ValLossCurve: jsonf.Vec(ck.Trainer.ValLossCurve),
		Estimator:    toEstJSON(ck.Estimator), LogLen: len(ck.Trainer.Log)}
	if err := checkCkptMeta(meta); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	h := header{Format: formatVFLCkpt, Version: ckptVersion, Params: len(ck.Trainer.Theta)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("logio: writing checkpoint header: %w", err)
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("logio: writing checkpoint meta: %w", err)
	}
	for i, ep := range ck.Trainer.Log {
		if len(ep.Theta) != h.Params {
			return fmt.Errorf("logio: checkpoint epoch %d shape drifts from header", i)
		}
		if err := enc.Encode(toVFLJSON(ep)); err != nil {
			return fmt.Errorf("logio: writing checkpoint epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadVFLCheckpoint deserializes a VFL checkpoint, validating shapes.
func ReadVFLCheckpoint(r io.Reader) (*VFLCheckpoint, error) {
	h, dec, err := readHeader(r, formatVFLCkpt)
	if err != nil {
		return nil, err
	}
	meta := &ckptMeta{}
	if err := dec.Decode(meta); err != nil {
		return nil, fmt.Errorf("logio: reading checkpoint meta: %w", err)
	}
	if err := checkCkptMeta(meta); err != nil {
		return nil, err
	}
	if len(meta.Theta) != h.Params {
		return nil, fmt.Errorf("logio: checkpoint theta has %d params, header says %d", len(meta.Theta), h.Params)
	}
	ck := &VFLCheckpoint{Trainer: vfl.Checkpoint{Epoch: meta.Epoch,
		Theta: meta.Theta, ValLossCurve: meta.ValLossCurve}, Estimator: meta.Estimator.state()}
	for k := 0; k < meta.LogLen; k++ {
		rec := &vflEpochJSON{}
		if err := dec.Decode(rec); err != nil {
			return nil, fmt.Errorf("logio: reading checkpoint epoch %d: %w", k, err)
		}
		ep := rec.epoch()
		if len(ep.Theta) != h.Params || len(ep.Grad) != h.Params || len(ep.ValGrad) != h.Params {
			return nil, fmt.Errorf("logio: checkpoint epoch %d shape mismatch", k)
		}
		if ep.T != k+1 {
			return nil, fmt.Errorf("logio: checkpoint epoch %d out of order (T=%d)", k, ep.T)
		}
		ck.Trainer.Log = append(ck.Trainer.Log, ep)
	}
	return ck, nil
}
