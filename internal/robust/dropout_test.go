package robust

import (
	"math"
	"testing"

	"digfl/internal/dataset"
	"digfl/internal/faults"
	"digfl/internal/hfl"
	"digfl/internal/nn"
	"digfl/internal/tensor"
)

func TestNewTrimmedMeanValidation(t *testing.T) {
	if _, err := NewTrimmedMean(-1); err == nil {
		t.Fatal("negative trim should be rejected at construction")
	}
	tm, err := NewTrimmedMean(2)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Trim != 2 {
		t.Fatalf("Trim = %d, want 2", tm.Trim)
	}
}

// A trim that is valid for the full federation must degrade gracefully —
// not panic — on a survivor-subset epoch too small for it.
func TestTrimmedMeanDegradesOnSurvivorEpochs(t *testing.T) {
	tm := TrimmedMean{Trim: 1} // fine for 5 parties, oversized for 2 survivors
	ep := &hfl.Epoch{T: 3,
		Deltas:   [][]float64{{2}, {6}},
		Reported: []int{0, 3},
	}
	got := mustAgg(t, tm, ep)
	if got[0] != 4 { // plain mean: effective trim clamped to 0
		t.Fatalf("degraded trimmed mean = %v, want 4", got)
	}
	// Three survivors admit trim 1 again.
	ep = &hfl.Epoch{T: 4,
		Deltas:   [][]float64{{1}, {2}, {1000}},
		Reported: []int{0, 2, 4},
	}
	if got := mustAgg(t, tm, ep); got[0] != 2 {
		t.Fatalf("survivor-epoch trimmed mean = %v, want 2", got)
	}
}

func TestMedianOnSurvivorEpochs(t *testing.T) {
	ep := &hfl.Epoch{T: 2,
		Deltas:   [][]float64{{1, 10}, {5, 20}},
		Reported: []int{1, 4},
	}
	got := mustAgg(t, Median{}, ep)
	if got[0] != 3 || got[1] != 15 {
		t.Fatalf("survivor-epoch median = %v", got)
	}
}

// An end-to-end run: robust aggregation under injected dropout still trains
// and never panics, even when dropouts shrink some epochs below 2·Trim+1.
func TestRobustAggregatorsUnderDropout(t *testing.T) {
	rng := tensor.NewRNG(11)
	full := dataset.MNISTLike(300, 11)
	train, val := full.Split(0.2, rng)
	parts := dataset.PartitionIID(train, 5, rng)

	for name, agg := range map[string]hfl.Aggregator{
		"median":  Median{},
		"trimmed": TrimmedMean{Trim: 1},
	} {
		inj := faults.MustNew(faults.Config{Seed: 42, Dropout: 0.4})
		tr := &hfl.Trainer{
			Model:      nn.NewSoftmaxRegression(train.Dim(), train.Classes),
			Parts:      parts,
			Val:        val,
			Cfg:        hfl.Config{Epochs: 15, LR: 0.3, KeepLog: true, Faults: inj},
			Aggregator: agg,
		}
		res, err := tr.RunE()
		if err != nil {
			t.Fatalf("%s under dropout: %v", name, err)
		}
		degraded := 0
		for _, ep := range res.Log {
			if ep.Reported != nil {
				degraded++
			}
		}
		if degraded == 0 {
			t.Fatalf("%s: 40%% dropout over 15 epochs fired nothing", name)
		}
		last := res.ValLossCurve[len(res.ValLossCurve)-1]
		if math.IsNaN(last) || last >= res.ValLossCurve[0] {
			t.Fatalf("%s failed to train under dropout: %v -> %v",
				name, res.ValLossCurve[0], last)
		}
	}
}
