package robust

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"digfl/internal/core"
	"digfl/internal/hfl"
	"digfl/internal/nn"
	"digfl/internal/obs"
	"digfl/internal/tensor"
)

// TestAggregateErrors checks the error contract: empty epochs, ragged
// shapes, and bad configs return errors from Aggregate on every rule.
func TestAggregateErrors(t *testing.T) {
	ragged := epoch([]float64{1, 2}, []float64{3})
	empty := &hfl.Epoch{}
	cases := map[string]struct {
		agg  hfl.Aggregator
		ep   *hfl.Epoch
		want string
	}{
		"median empty":     {Median{}, empty, "no participant"},
		"median ragged":    {Median{}, ragged, "ragged"},
		"trimmed ragged":   {TrimmedMean{}, ragged, "ragged"},
		"trimmed invalid":  {TrimmedMean{Trim: 2}, epoch([]float64{1}, []float64{2}, []float64{3}), "invalid"},
		"krum ragged":      {Krum{}, ragged, "ragged"},
		"krum infeasible":  {Krum{F: 1}, epoch([]float64{1}, []float64{2}, []float64{3}), "infeasible"},
		"krum negative F":  {Krum{F: -1}, epoch([]float64{1}, []float64{2}, []float64{3}), "negative"},
		"multikrum bad M":  {MultiKrum{F: 0, M: 0}, epoch([]float64{1}, []float64{2}, []float64{3}), "positive"},
		"normbound cfg":    {NormBound{}, epoch([]float64{1}), "positive"},
		"normbound ragged": {NormBound{MaxNorm: 1}, ragged, "ragged"},
	}
	for name, c := range cases {
		out, err := c.agg.Aggregate(c.ep)
		if err == nil {
			t.Errorf("%s: Aggregate returned %v, want error", name, out)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", name, err, c.want)
		}
	}
}

// TestKrumSelectsHonestCenter: 4 clustered honest updates + 1 far outlier;
// Krum must pick a cluster member, never the outlier.
func TestKrumSelectsHonestCenter(t *testing.T) {
	ep := epoch(
		[]float64{1.0, 1.0},
		[]float64{1.1, 0.9},
		[]float64{0.9, 1.1},
		[]float64{1.05, 1.0},
		[]float64{-50, 80},
	)
	got, err := Krum{F: 1}.Aggregate(ep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 0.2 || math.Abs(got[1]-1) > 0.2 {
		t.Fatalf("Krum selected the outlier: %v", got)
	}
	// Multi-Krum with M=3 averages cluster members only.
	mk, err := MultiKrum{F: 1, M: 3}.Aggregate(ep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mk[0]-1) > 0.2 || math.Abs(mk[1]-1) > 0.2 {
		t.Fatalf("Multi-Krum leaked the outlier: %v", mk)
	}
}

// TestKrumRejectsNaNUpdate: a NaN update must never win selection.
func TestKrumRejectsNaNUpdate(t *testing.T) {
	ep := epoch(
		[]float64{1, 1},
		[]float64{1.1, 1},
		[]float64{0.9, 1},
		[]float64{math.NaN(), 1},
		[]float64{1, 0.9},
	)
	got, err := Krum{F: 1}.Aggregate(ep)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got[0]) {
		t.Fatal("Krum selected the NaN update")
	}
}

// TestKrumDegradedSurvivors: an infeasible F on a survivor epoch degrades
// instead of erroring; a single survivor is returned as-is.
func TestKrumDegradedSurvivors(t *testing.T) {
	ep := epoch([]float64{2, 4})
	ep.Reported = []int{3}
	got, err := Krum{F: 2}.Aggregate(ep)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 4 {
		t.Fatalf("single-survivor Krum = %v", got)
	}
	// Three survivors, F=2 infeasible for n=3: still aggregates.
	ep = epoch([]float64{1}, []float64{2}, []float64{3})
	ep.Reported = []int{0, 2, 4}
	if _, err := (MultiKrum{F: 2, M: 5}).Aggregate(ep); err != nil {
		t.Fatalf("degraded Multi-Krum errored: %v", err)
	}
}

// TestNormBound clips only over-norm updates.
func TestNormBound(t *testing.T) {
	ep := epoch([]float64{3, 4}, []float64{30, 40}) // norms 5 and 50
	got, err := NormBound{MaxNorm: 5}.Aggregate(ep)
	if err != nil {
		t.Fatal(err)
	}
	// Second update rescaled to norm 5 → (3,4); mean of (3,4),(3,4).
	if math.Abs(got[0]-3) > 1e-12 || math.Abs(got[1]-4) > 1e-12 {
		t.Fatalf("NormBound = %v, want [3 4]", got)
	}
	// Epoch deltas must not be mutated.
	if ep.Deltas[1][0] != 30 {
		t.Fatal("NormBound mutated the epoch record")
	}
}

// screenEpoch builds an epoch with Theta sized to the deltas.
func screenEpoch(deltas ...[]float64) *hfl.Epoch {
	ep := epoch(deltas...)
	ep.Theta = make([]float64, len(deltas[0]))
	return ep
}

// TestScreenDropsBadUpdates: wrong shape and non-finite coordinates are
// rejected with events; honest updates pass untouched.
func TestScreenDropsBadUpdates(t *testing.T) {
	c := &obs.Collector{}
	s := MustNewUpdateScreen(ScreenConfig{Sink: c})
	ep := screenEpoch(
		[]float64{1, 0},
		[]float64{0, math.NaN()},
		[]float64{1, 1, 1}, // wrong length
		[]float64{0, math.Inf(1)},
		[]float64{0, 1},
	)
	drop, err := s.Screen(ep, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(drop, []int{1, 2, 3}) {
		t.Fatalf("drop = %v, want [1 2 3]", drop)
	}
	if got := c.Snapshot().UpdatesRejected; got != 3 {
		t.Fatalf("UpdatesRejected = %d, want 3", got)
	}
	if ep.Deltas[0][0] != 1 || ep.Deltas[4][1] != 1 {
		t.Fatal("screen mutated honest updates")
	}
}

// TestScreenClipsOutlierNorms: an update far above the median norm is
// rescaled to the threshold; honest ones stay bit-identical.
func TestScreenClipsOutlierNorms(t *testing.T) {
	c := &obs.Collector{}
	s := MustNewUpdateScreen(ScreenConfig{ClipFactor: 2, Sink: c})
	ep := screenEpoch(
		[]float64{1, 0},
		[]float64{0, 1},
		[]float64{1, 0},
		[]float64{100, 0},
	)
	drop, err := s.Screen(ep, []int{0, 1, 2, 3})
	if err != nil || len(drop) != 0 {
		t.Fatalf("drop = %v, err = %v", drop, err)
	}
	// Median norm 1, threshold 2: outlier rescaled from 100 to 2.
	if math.Abs(ep.Deltas[3][0]-2) > 1e-12 {
		t.Fatalf("outlier not clipped: %v", ep.Deltas[3])
	}
	if ep.Deltas[0][0] != 1 {
		t.Fatal("honest update mutated")
	}
	if got := c.Snapshot().UpdatesClipped; got != 1 {
		t.Fatalf("UpdatesClipped = %d, want 1", got)
	}
	// Negative ClipFactor disables clipping entirely.
	s2 := MustNewUpdateScreen(ScreenConfig{ClipFactor: -1})
	ep2 := screenEpoch([]float64{1, 0}, []float64{1000, 0})
	if _, err := s2.Screen(ep2, []int{0, 1}); err != nil || ep2.Deltas[1][0] != 1000 {
		t.Fatal("disabled clipping still clipped")
	}
}

// TestScreenConfigValidation rejects out-of-range Lambda.
func TestScreenConfigValidation(t *testing.T) {
	if _, err := NewUpdateScreen(ScreenConfig{Lambda: 2}); err == nil {
		t.Error("Lambda 2 accepted")
	}
	if _, err := NewQuarantine(Quarantine{Lambda: -1}); err == nil {
		t.Error("quarantine Lambda -1 accepted")
	}
	if _, err := NewQuarantine(Quarantine{Patience: -1}); err == nil {
		t.Error("quarantine Patience -1 accepted")
	}
}

// qEpoch builds an epoch whose first-order φ is phi[i] = valGrad·deltas[i]/n.
func qEpoch(t int, valGrad []float64, deltas ...[]float64) *hfl.Epoch {
	return &hfl.Epoch{T: t, Deltas: deltas, ValGrad: valGrad, Theta: make([]float64, len(valGrad))}
}

// TestQuarantineBansPersistentNegative: a participant whose φ stays
// negative while the cohort median is positive is banned after Patience
// epochs and gets zero weight thereafter.
func TestQuarantineBansPersistentNegative(t *testing.T) {
	c := &obs.Collector{}
	q := MustNewQuarantine(Quarantine{Patience: 2, Sink: c})
	vg := []float64{1}
	for ep := 1; ep <= 5; ep++ {
		w := q.Weights(qEpoch(ep, vg, []float64{1}, []float64{2}, []float64{-3}))
		switch {
		case ep < 2:
			if w[2] != 0 { // rectification already zeroes negative φ
				t.Fatalf("epoch %d: attacker weight %v", ep, w[2])
			}
		case ep >= 2:
			if !q.IsQuarantined(2) {
				t.Fatalf("epoch %d: attacker not quarantined", ep)
			}
			if w[2] != 0 {
				t.Fatalf("epoch %d: quarantined weight %v", ep, w[2])
			}
			if w[0] == 0 || w[1] == 0 {
				t.Fatalf("epoch %d: honest weights zeroed: %v", ep, w)
			}
		}
	}
	if got := q.Quarantined(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Quarantined() = %v, want [2]", got)
	}
	if got := c.Snapshot().Quarantines; got != 1 {
		t.Fatalf("Quarantines = %d, want 1 (ban must emit once)", got)
	}
}

// TestQuarantineMedianGuard: when the whole cohort's EWMA is non-positive
// (training stalled), nobody is banned.
func TestQuarantineMedianGuard(t *testing.T) {
	q := MustNewQuarantine(Quarantine{Patience: 1})
	vg := []float64{1}
	for ep := 1; ep <= 5; ep++ {
		q.Weights(qEpoch(ep, vg, []float64{-1}, []float64{-2}, []float64{-3}))
	}
	if got := q.Quarantined(); got != nil {
		t.Fatalf("stalled cohort banned %v", got)
	}
}

// TestQuarantineMatchesEq17WhenClean: with no bans the weights must be
// bit-identical to core.Weights over the same φ — the no-attack
// bit-identity contract.
func TestQuarantineMatchesEq17WhenClean(t *testing.T) {
	q := MustNewQuarantine(Quarantine{})
	vg := []float64{0.5, -0.25}
	deltas := [][]float64{{1, 2}, {3, -1}, {-0.5, 4}}
	ep := qEpoch(1, vg, deltas...)
	w := q.Weights(ep)
	phi := make([]float64, len(deltas))
	for i, d := range deltas {
		phi[i] = tensor.Dot(vg, d) / float64(len(deltas))
	}
	if want := core.Weights(phi); !reflect.DeepEqual(w, want) {
		t.Fatalf("clean quarantine weights %v != Eq.17 %v", w, want)
	}
}

// TestQuarantineDegradedEpochs: absent participants keep state frozen; a
// banned participant stays banned across survivor epochs.
func TestQuarantineDegradedEpochs(t *testing.T) {
	q := MustNewQuarantine(Quarantine{Patience: 1})
	vg := []float64{1}
	// Round 1: full; attacker 2 banned immediately (patience 1).
	q.Weights(qEpoch(1, vg, []float64{1}, []float64{2}, []float64{-3}))
	if !q.IsQuarantined(2) {
		t.Fatal("attacker not banned")
	}
	// Round 2: survivors {0, 2} — banned stays zero-weighted.
	ep := qEpoch(2, vg, []float64{1}, []float64{-3})
	ep.Reported = []int{0, 2}
	w := q.Weights(ep)
	if w[1] != 0 || w[0] != 1 {
		t.Fatalf("survivor-epoch weights = %v, want [1 0]", w)
	}
	if q.IsQuarantined(0) || q.IsQuarantined(1) {
		t.Fatal("honest participant banned")
	}
}

// TestScreenInTrainerBitIdentity: wiring Screen + Quarantine into a clean
// trainer run changes nothing — loss curve and final model are
// bit-identical to an undefended reweighted run.
func TestScreenInTrainerBitIdentity(t *testing.T) {
	parts, train, val := corruptedFederation(11, 4, 0)
	mk := func(defended bool) *hfl.Trainer {
		tr := &hfl.Trainer{
			Model: nn.NewSoftmaxRegression(train.Dim(), train.Classes),
			Parts: parts,
			Val:   val,
			Cfg:   hfl.Config{Epochs: 8, LR: 0.3},
		}
		est := core.NewHFLEstimator(len(parts), tr.Model.NumParams(), core.ResourceSaving, nil)
		if defended {
			tr.Screen = MustNewUpdateScreen(ScreenConfig{})
			tr.Reweighter = MustNewQuarantine(Quarantine{Estimator: est})
		} else {
			tr.Reweighter = &core.HFLReweighter{Estimator: est}
		}
		return tr
	}
	plain, err := mk(false).RunE()
	if err != nil {
		t.Fatal(err)
	}
	defended, err := mk(true).RunE()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.ValLossCurve, defended.ValLossCurve) {
		t.Fatalf("clean defended loss curve diverged:\n%v\n%v",
			plain.ValLossCurve, defended.ValLossCurve)
	}
	if !reflect.DeepEqual(plain.Model.Params(), defended.Model.Params()) {
		t.Fatal("clean defended final model not bit-identical")
	}
}
