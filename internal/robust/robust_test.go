package robust

import (
	"math"
	"testing"

	"digfl/internal/core"
	"digfl/internal/dataset"
	"digfl/internal/hfl"
	"digfl/internal/nn"
	"digfl/internal/tensor"
)

func epoch(deltas ...[]float64) *hfl.Epoch {
	return &hfl.Epoch{T: 1, Deltas: deltas}
}

// mustAgg unwraps an Aggregate call the test expects to succeed.
func mustAgg(t *testing.T, a hfl.Aggregator, ep *hfl.Epoch) []float64 {
	t.Helper()
	out, err := a.Aggregate(ep)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	return out
}

func TestMedianHandComputed(t *testing.T) {
	ep := epoch(
		[]float64{1, 10},
		[]float64{2, 20},
		[]float64{100, 30},
	)
	got := mustAgg(t, Median{}, ep)
	if got[0] != 2 || got[1] != 20 {
		t.Fatalf("median = %v", got)
	}
	// Even count: average of middle two.
	ep = epoch([]float64{1}, []float64{2}, []float64{3}, []float64{100})
	if got := mustAgg(t, Median{}, ep); got[0] != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestTrimmedMeanHandComputed(t *testing.T) {
	ep := epoch([]float64{1}, []float64{2}, []float64{3}, []float64{4}, []float64{1000})
	got := mustAgg(t, TrimmedMean{Trim: 1}, ep)
	if got[0] != 3 { // mean of {2,3,4}
		t.Fatalf("trimmed mean = %v", got)
	}
}

func TestTrimmedMeanResistsOutlier(t *testing.T) {
	ep := epoch([]float64{1, 1}, []float64{1, 1}, []float64{1, 1}, []float64{1e9, -1e9})
	got := mustAgg(t, TrimmedMean{Trim: 1}, ep)
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-1) > 1e-12 {
		t.Fatalf("outlier leaked through trimmed mean: %v", got)
	}
}

func TestAggregateConfigErrors(t *testing.T) {
	cases := []hfl.Aggregator{
		Median{},
		TrimmedMean{Trim: 2},
		TrimmedMean{Trim: -1},
	}
	eps := []*hfl.Epoch{
		{},
		epoch([]float64{1}, []float64{2}, []float64{3}),
		epoch([]float64{1}, []float64{2}, []float64{3}),
	}
	for i, a := range cases {
		if out, err := a.Aggregate(eps[i]); err == nil {
			t.Fatalf("case %d: Aggregate returned %v, want error", i, out)
		}
	}
}

// corruptedFederation builds an n-participant task where bad of them hold
// 90% mislabeled data.
func corruptedFederation(seed int64, n, bad int) (parts []dataset.Dataset, train, val dataset.Dataset) {
	rng := tensor.NewRNG(seed)
	full := dataset.SynthImages(dataset.ImageConfig{
		Name: "rob", N: 1500, Side: 8, Classes: 10, Noise: 1.6, Seed: seed,
	})
	train, val = full.Split(0.2, rng)
	parts = dataset.PartitionIID(train, n, rng)
	for i := n - bad; i < n; i++ {
		parts[i] = dataset.Mislabel(parts[i], 0.9, rng.Split(int64(i)))
	}
	return parts, train, val
}

func accuracyWith(parts []dataset.Dataset, train, val dataset.Dataset, agg hfl.Aggregator, rw hfl.Reweighter) float64 {
	tr := &hfl.Trainer{
		Model:      nn.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts:      parts,
		Val:        val,
		Cfg:        hfl.Config{Epochs: 20, LR: 0.3},
		Aggregator: agg,
		Reweighter: rw,
	}
	return hfl.Accuracy(tr.Run().Model, val)
}

// With a corrupted minority, the robust rules and DIG-FL reweighting all
// beat plain averaging.
func TestRobustRulesHelpAgainstMinorityCorruption(t *testing.T) {
	parts, train, val := corruptedFederation(5, 5, 2)
	plain := accuracyWith(parts, train, val, nil, nil)
	median := accuracyWith(parts, train, val, Median{}, nil)
	trimmed := accuracyWith(parts, train, val, TrimmedMean{Trim: 1}, nil)
	digfl := accuracyWith(parts, train, val, nil, &core.HFLReweighter{})
	for name, acc := range map[string]float64{"median": median, "trimmed": trimmed, "DIG-FL": digfl} {
		if acc < plain-0.02 {
			t.Errorf("%s (%.3f) should not trail plain averaging (%.3f)", name, acc, plain)
		}
	}
}

// Past the 1/2 breakdown point (4 of 5 corrupted) the median follows the
// corrupted majority while DIG-FL's validation anchor keeps working — the
// extension result motivating the reweight mechanism.
func TestDIGFLSurvivesMajorityCorruptionWhereMedianFails(t *testing.T) {
	parts, train, val := corruptedFederation(6, 5, 4)
	median := accuracyWith(parts, train, val, Median{}, nil)
	digfl := accuracyWith(parts, train, val, nil, &core.HFLReweighter{})
	if digfl < median+0.1 {
		t.Fatalf("DIG-FL (%.3f) should clearly beat median (%.3f) beyond the breakdown point",
			digfl, median)
	}
}
