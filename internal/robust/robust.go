// Package robust implements the server-side defenses of the adversarial
// runtime: classical Byzantine-robust aggregation rules (coordinate-wise
// median, trimmed mean, Krum/Multi-Krum, norm bounding) as hfl.Aggregator
// plugins, a pre-aggregation update screen (shape and finiteness checks,
// median-based norm clipping), and a contribution-guided quarantine policy
// that turns the live DIG-FL φ stream into a ban list. The aggregation
// rules are the natural comparison points for the DIG-FL reweight
// mechanism: both defend against corrupted participants, but the robust
// rules assume an honest majority (breakdown point 1/2), while DIG-FL
// leans on the server's validation set and keeps working when 80%+ of the
// federation is low-quality (the paper's Fig. 7 regime). The ablation
// benchmarks at the repository root measure exactly that contrast.
//
// Every aggregator implements the error-returning hfl.Aggregator
// interface: configuration and shape failures surface as errors through
// the trainer's RunContext contract instead of panicking mid-epoch.
package robust

import (
	"fmt"
	"sort"

	"digfl/internal/hfl"
)

// Median aggregates local updates by coordinate-wise median.
type Median struct{}

var (
	_ hfl.Aggregator   = Median{}
	_ hfl.BufferedRule = Median{}
)

// NeedsBuffer implements hfl.BufferedRule: a coordinate-wise median needs
// every update of the round materialized at once and cannot stream.
func (Median) NeedsBuffer() bool { return true }

// Aggregate implements hfl.Aggregator.
func (Median) Aggregate(ep *hfl.Epoch) ([]float64, error) {
	return aggregate(ep, func(vals []float64) float64 {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			return vals[n/2]
		}
		return (vals[n/2-1] + vals[n/2]) / 2
	})
}

// TrimmedMean aggregates by coordinate-wise mean after discarding the Trim
// largest and Trim smallest values.
type TrimmedMean struct {
	// Trim is the per-side trim count; 2·Trim must be smaller than the
	// participant count.
	Trim int
}

var (
	_ hfl.Aggregator   = TrimmedMean{}
	_ hfl.BufferedRule = TrimmedMean{}
)

// NeedsBuffer implements hfl.BufferedRule: per-coordinate order statistics
// need the round's full update buffer and cannot stream.
func (TrimmedMean) NeedsBuffer() bool { return true }

// NewTrimmedMean validates the trim count at construction — misconfiguration
// surfaces before training starts instead of as an error epochs in. The
// participant count is a per-epoch property (dropouts shrink it), so it is
// checked at aggregation time: full-participation epochs still reject an
// oversized trim, degraded epochs degrade gracefully (see Aggregate).
func NewTrimmedMean(trim int) (TrimmedMean, error) {
	if trim < 0 {
		return TrimmedMean{}, fmt.Errorf("robust: negative trim %d", trim)
	}
	return TrimmedMean{Trim: trim}, nil
}

// Aggregate implements hfl.Aggregator. On a degraded
// (partial-participation) epoch whose survivor count is too small for the
// configured trim, the per-side trim shrinks to the largest feasible value
// — a transient dropout must not fail a run whose configuration is valid
// for the full federation.
func (t TrimmedMean) Aggregate(ep *hfl.Epoch) ([]float64, error) {
	trim := t.Trim
	if trim < 0 || 2*trim >= len(ep.Deltas) {
		if ep.Reported == nil && len(ep.Deltas) > 0 {
			return nil, fmt.Errorf("robust: trim %d invalid for %d participants", trim, len(ep.Deltas))
		}
		if trim < 0 {
			trim = 0
		}
		if m := (len(ep.Deltas) - 1) / 2; trim > m {
			trim = m
		}
	}
	return aggregate(ep, func(vals []float64) float64 {
		sort.Float64s(vals)
		kept := vals[trim : len(vals)-trim]
		var s float64
		for _, v := range kept {
			s += v
		}
		return s / float64(len(kept))
	})
}

// checkShapes validates that the epoch has updates and that they form a
// rectangular matrix, returning the parameter count.
func checkShapes(ep *hfl.Epoch) (int, error) {
	if len(ep.Deltas) == 0 {
		return 0, fmt.Errorf("robust: no participant updates")
	}
	p := len(ep.Deltas[0])
	for k, d := range ep.Deltas {
		if len(d) != p {
			return 0, fmt.Errorf("robust: ragged deltas: update %d has %d params, update 0 has %d", k, len(d), p)
		}
	}
	return p, nil
}

// aggregate applies a per-coordinate statistic over the participants'
// updates. The statistic receives a scratch slice it may reorder.
func aggregate(ep *hfl.Epoch, stat func([]float64) float64) ([]float64, error) {
	p, err := checkShapes(ep)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p)
	scratch := make([]float64, len(ep.Deltas))
	for j := 0; j < p; j++ {
		for k, d := range ep.Deltas {
			scratch[k] = d[j]
		}
		out[j] = stat(scratch)
	}
	return out, nil
}
