package robust

import (
	"reflect"
	"testing"

	"digfl/internal/hfl"
	"digfl/internal/nn"
)

// proxTrainer builds a clean multi-step federation with the given proximal
// coefficient.
func proxTrainer(mu float64, steps int) *hfl.Trainer {
	parts, train, val := corruptedFederation(17, 4, 0)
	cfg := hfl.Config{Epochs: 6, LR: 0.3, LocalSteps: steps}
	cfg = FedProx{Mu: mu}.Apply(cfg)
	return &hfl.Trainer{
		Model: nn.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts: parts,
		Val:   val,
		Cfg:   cfg,
	}
}

// TestFedProxZeroMuBitIdentical pins the defense's safety property: μ = 0
// adds exactly nothing, so a FedProx-configured multi-step run is
// bit-identical to the undefended run.
func TestFedProxZeroMuBitIdentical(t *testing.T) {
	plain, err := proxTrainer(0, 3).RunE()
	if err != nil {
		t.Fatal(err)
	}
	prox := proxTrainer(0, 3)
	if prox.Cfg.Prox != 0 {
		t.Fatalf("Apply(0) set Prox = %v", prox.Cfg.Prox)
	}
	defended, err := prox.RunE()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Model.Params(), defended.Model.Params()) {
		t.Fatal("μ=0 run not bit-identical to undefended run")
	}
	if !reflect.DeepEqual(plain.ValLossCurve, defended.ValLossCurve) {
		t.Fatal("μ=0 loss curve diverged")
	}
}

// TestFedProxAnchorsMultiStepDrift: a positive μ must change multi-step
// local updates (the proximal term is live) while still training to a
// finite, decreasing loss.
func TestFedProxAnchorsMultiStepDrift(t *testing.T) {
	plain, err := proxTrainer(0, 3).RunE()
	if err != nil {
		t.Fatal(err)
	}
	defended, err := proxTrainer(0.5, 3).RunE()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(plain.Model.Params(), defended.Model.Params()) {
		t.Fatal("μ=0.5 multi-step run identical to μ=0 — proximal term is dead")
	}
	if defended.FinalLoss >= defended.InitLoss {
		t.Fatalf("FedProx run did not train: %v -> %v", defended.InitLoss, defended.FinalLoss)
	}
}

// TestFedProxSingleStepNoop: with one local step the local model never
// leaves θ, so the proximal term vanishes identically and μ > 0 is
// bit-identical to the plain run.
func TestFedProxSingleStepNoop(t *testing.T) {
	plain, err := proxTrainer(0, 1).RunE()
	if err != nil {
		t.Fatal(err)
	}
	defended, err := proxTrainer(0.5, 1).RunE()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Model.Params(), defended.Model.Params()) {
		t.Fatal("single-step μ>0 run not bit-identical to plain run")
	}
}

// TestProxAddHandComputed pins the shared primitive: g += μ·(w − θ), and
// μ = 0 leaves g untouched (early return, no FLOPs).
func TestProxAddHandComputed(t *testing.T) {
	g := []float64{1, 2}
	hfl.ProxAdd(0.5, g, []float64{3, 4}, []float64{1, 1})
	if g[0] != 2 || g[1] != 3.5 {
		t.Fatalf("ProxAdd: got %v, want [2 3.5]", g)
	}
	g = []float64{1, 2}
	hfl.ProxAdd(0, g, []float64{3, 4}, []float64{1, 1})
	if g[0] != 1 || g[1] != 2 {
		t.Fatalf("ProxAdd μ=0 mutated g: %v", g)
	}
}

// TestBufferedRuleDeclarations pins which rules refuse the streaming/async
// paths: the buffer-dependent family answers NeedsBuffer true, and the
// clip-only NormBound stays streamable.
func TestBufferedRuleDeclarations(t *testing.T) {
	buffered := []hfl.Aggregator{Median{}, TrimmedMean{Trim: 1}, Krum{F: 1}, MultiKrum{F: 1, M: 2}}
	for _, rule := range buffered {
		br, ok := rule.(hfl.BufferedRule)
		if !ok || !br.NeedsBuffer() {
			t.Errorf("%T must declare NeedsBuffer() == true", rule)
		}
	}
	if br, ok := any(NormBound{MaxNorm: 1}).(hfl.BufferedRule); ok && br.NeedsBuffer() {
		t.Error("NormBound must stay streamable")
	}
}
