package robust

import (
	"fmt"
	"sort"

	"digfl/internal/core"
	"digfl/internal/hfl"
	"digfl/internal/obs"
	"digfl/internal/tensor"
)

// Quarantine is the contribution-guided defense the paper gestures at:
// contribution evaluation *as* an admission policy. It is an
// hfl.Reweighter that consumes the live DIG-FL φ stream (through an
// HFLEstimator, or the first-order projection when none is attached),
// maintains a rectified EWMA of each participant's per-epoch contribution,
// and permanently demotes persistent non-contributors to zero aggregation
// weight once their EWMA has stayed non-positive for Patience consecutive
// observed epochs while the federation median is positive. The median
// guard encodes the honest-majority assumption: when training has stalled
// for everyone (median ≤ 0), nobody is banned for it.
//
// For participants not yet quarantined the returned weights are exactly
// the paper's Eq. 17 rectification over the non-banned cohort, so a run in
// which nobody is ever banned is bit-identical to using core.HFLReweighter
// directly.
//
// Quarantine keeps per-run state and is not safe for concurrent use; the
// trainer calls it serially once per epoch.
type Quarantine struct {
	// Estimator, when non-nil, supplies φ_{t,·} (and accumulates the run's
	// attribution as a side effect, like core.HFLReweighter). When nil, the
	// first-order projection (1/|S|)·∇loss^v·δ is computed per epoch.
	Estimator *core.HFLEstimator
	// Lambda is the EWMA rate: ewma ← (1−Lambda)·ewma + Lambda·φ.
	// Defaults to 0.3.
	Lambda float64
	// Patience is the number of consecutive observed epochs a
	// participant's rectified EWMA must stay non-positive (against a
	// positive federation median) before it is quarantined. Defaults to 3.
	Patience int
	// Sink optionally receives one KindQuarantine event per ban.
	Sink obs.Sink

	ewma    []float64
	seen    []bool
	streak  []int
	banned  []bool
	nBanned int
}

var _ hfl.Reweighter = (*Quarantine)(nil)

// NewQuarantine validates the policy parameters and fills defaults.
func NewQuarantine(q Quarantine) (*Quarantine, error) {
	if q.Lambda < 0 || q.Lambda > 1 {
		return nil, fmt.Errorf("robust: quarantine Lambda %v outside [0,1]", q.Lambda)
	}
	if q.Patience < 0 {
		return nil, fmt.Errorf("robust: negative quarantine Patience %d", q.Patience)
	}
	if q.Lambda == 0 {
		q.Lambda = 0.3
	}
	if q.Patience == 0 {
		q.Patience = 3
	}
	return &q, nil
}

// MustNewQuarantine is NewQuarantine panicking on invalid configuration.
func MustNewQuarantine(q Quarantine) *Quarantine {
	out, err := NewQuarantine(q)
	if err != nil {
		panic(err)
	}
	return out
}

// grow lazily sizes the per-participant state to at least n.
func (q *Quarantine) grow(n int) {
	for len(q.ewma) < n {
		q.ewma = append(q.ewma, 0)
		q.seen = append(q.seen, false)
		q.streak = append(q.streak, 0)
		q.banned = append(q.banned, false)
	}
}

// Weights implements hfl.Reweighter: observe the epoch's φ, update the
// quarantine state, and return Eq. 17 weights over the non-banned
// reporters (banned reporters get exactly 0).
func (q *Quarantine) Weights(ep *hfl.Epoch) []float64 {
	if q.Lambda == 0 {
		q.Lambda = 0.3
	}
	if q.Patience == 0 {
		q.Patience = 3
	}
	// reporters are the global indices aligned with ep.Deltas.
	reporters := ep.Reported
	var phi []float64 // aligned with reporters/ep.Deltas
	if q.Estimator != nil {
		global := q.Estimator.Observe(ep)
		if reporters == nil {
			phi = global
		} else {
			phi = make([]float64, len(reporters))
			for k, i := range reporters {
				phi[k] = global[i]
			}
		}
	} else {
		phi = make([]float64, len(ep.Deltas))
		inv := 1 / float64(len(ep.Deltas))
		for k, delta := range ep.Deltas {
			phi[k] = inv * tensor.Dot(ep.ValGrad, delta)
		}
	}
	if len(ep.Deltas) == 0 {
		return nil
	}
	if reporters == nil {
		reporters = make([]int, len(ep.Deltas))
		for k := range reporters {
			reporters[k] = k
		}
	}
	maxIdx := 0
	for _, i := range reporters {
		if i > maxIdx {
			maxIdx = i
		}
	}
	q.grow(maxIdx + 1)

	// Update EWMAs for this epoch's reporters only — absent participants
	// keep their state frozen, like the estimator's ΔG recursion.
	for k, i := range reporters {
		if !q.seen[i] {
			q.ewma[i], q.seen[i] = phi[k], true
		} else {
			q.ewma[i] = (1-q.Lambda)*q.ewma[i] + q.Lambda*phi[k]
		}
	}
	// Federation health: median EWMA over this epoch's reporters.
	meds := make([]float64, len(reporters))
	for k, i := range reporters {
		meds[k] = q.ewma[i]
	}
	sort.Float64s(meds)
	med := meds[len(meds)/2]
	if len(meds)%2 == 0 {
		med = (meds[len(meds)/2-1] + meds[len(meds)/2]) / 2
	}
	for _, i := range reporters {
		if q.banned[i] {
			continue
		}
		if med > 0 && q.ewma[i] <= 0 {
			q.streak[i]++
			if q.streak[i] >= q.Patience {
				q.banned[i] = true
				q.nBanned++
				obs.Emit(q.Sink, obs.Event{Kind: obs.KindQuarantine, T: ep.T, Part: i})
			}
		} else {
			q.streak[i] = 0
		}
	}

	// Eq. 17 rectification over the non-banned reporters; banned reporters
	// get exactly zero weight. With no bans this reproduces core.Weights
	// bit-for-bit.
	w := make([]float64, len(phi))
	var sum float64
	active := 0
	for k, i := range reporters {
		if q.banned[i] {
			continue
		}
		active++
		if phi[k] > 0 {
			w[k] = phi[k]
			sum += phi[k]
		}
	}
	if sum == 0 {
		if active == 0 {
			// Everyone reporting is banned: zero weights freeze the model
			// this round.
			return w
		}
		for k, i := range reporters {
			if !q.banned[i] {
				w[k] = 1 / float64(active)
			}
		}
		return w
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}

// QuarantineState is the serializable state of a Quarantine policy —
// everything needed to continue the EWMA/streak bookkeeping after a crash
// so the resumed ban sequence is bit-identical to an uninterrupted run.
// The networked coordinator journals it in its write-ahead log. All slices
// share one length (the highest participant index seen so far plus one).
type QuarantineState struct {
	// Ewma is each participant's rectified contribution EWMA.
	Ewma []float64
	// Seen marks participants whose EWMA has been initialized.
	Seen []bool
	// Streak counts consecutive non-positive epochs per participant.
	Streak []int
	// Banned marks quarantined participants.
	Banned []bool
}

// State snapshots the policy for checkpointing. The snapshot is a deep
// copy: later epochs do not mutate it.
func (q *Quarantine) State() *QuarantineState {
	s := &QuarantineState{
		Ewma:   append([]float64(nil), q.ewma...),
		Seen:   append([]bool(nil), q.seen...),
		Streak: append([]int(nil), q.streak...),
		Banned: append([]bool(nil), q.banned...),
	}
	return s
}

// SetState reinstalls a snapshot captured by State; subsequent epochs
// continue the EWMA recursion and ban streaks bit-identically to a policy
// that never stopped.
func (q *Quarantine) SetState(s *QuarantineState) error {
	if s == nil {
		return fmt.Errorf("robust: nil quarantine state")
	}
	n := len(s.Ewma)
	if len(s.Seen) != n || len(s.Streak) != n || len(s.Banned) != n {
		return fmt.Errorf("robust: quarantine state slices disagree on length (%d/%d/%d/%d)",
			len(s.Ewma), len(s.Seen), len(s.Streak), len(s.Banned))
	}
	q.ewma = append([]float64(nil), s.Ewma...)
	q.seen = append([]bool(nil), s.Seen...)
	q.streak = append([]int(nil), s.Streak...)
	q.banned = append([]bool(nil), s.Banned...)
	q.nBanned = 0
	for _, b := range q.banned {
		if b {
			q.nBanned++
		}
	}
	return nil
}

// IsQuarantined reports whether participant i is currently banned.
func (q *Quarantine) IsQuarantined(i int) bool {
	return i >= 0 && i < len(q.banned) && q.banned[i]
}

// Quarantined returns the sorted banned participant indices (nil when
// nobody is banned).
func (q *Quarantine) Quarantined() []int {
	if q.nBanned == 0 {
		return nil
	}
	out := make([]int, 0, q.nBanned)
	for i, b := range q.banned {
		if b {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
