package robust

import "digfl/internal/hfl"

// FedProx is the proximal-term heterogeneity defense for multi-step local
// training. Unlike the other rules in this package, FedProx is not a
// server-side Aggregator — the defense lives in the client update, where
// each local gradient step adds μ·(w − θ_{t-1}), penalizing drift of the
// local model w from the broadcast model θ_{t-1}. That makes slow or
// heterogeneous (non-IID) clients first-class: their multi-step updates stay
// anchored to the global trajectory instead of wandering — exactly the
// regime the asynchronous commit policy folds them back into.
//
// Because the term vanishes at μ = 0 (and identically when LocalSteps ≤ 1,
// where the local model never leaves θ), FedProx at μ = 0 is bit-identical
// to the undefended run — asserted by TestFedProxZeroMuBitIdentical.
type FedProx struct {
	// Mu is the proximal coefficient μ ≥ 0; 0 disables the defense.
	Mu float64
}

// Apply returns a copy of cfg with the proximal coefficient installed. The
// trainer broadcasts it through RoundSpec.Prox (and fednet through the join
// reply), so in-process and networked clients apply the identical term.
func (f FedProx) Apply(cfg hfl.Config) hfl.Config {
	cfg.Prox = f.Mu
	return cfg
}
