package robust

import (
	"fmt"
	"math"
	"sort"

	"digfl/internal/hfl"
	"digfl/internal/obs"
)

// ScreenConfig parameterizes an UpdateScreen. The zero value selects the
// defaults documented on each field.
type ScreenConfig struct {
	// ClipFactor sets the norm-clipping threshold as a multiple of the
	// running median update norm: updates with L2 norm above
	// ClipFactor×median are rescaled down to the threshold. Defaults to 3;
	// negative disables clipping (shape and finiteness checks remain).
	ClipFactor float64
	// Lambda is the EWMA rate of the running median-of-norms: after each
	// epoch, median ← (1−Lambda)·median + Lambda·median_t. Defaults to 0.3.
	Lambda float64
	// Sink optionally receives a KindUpdateRejected event per dropped
	// update and a KindUpdateClipped event (Value = pre-clip norm) per
	// clipped one.
	Sink obs.Sink
}

// UpdateScreen is the server-side pre-aggregation defense: it drops
// wrong-shape and non-finite updates outright and norm-clips outliers
// against a running median-of-norms threshold. The median (breakdown
// point 1/2) keeps the threshold anchored to the honest cohort even when
// a large minority inflates its updates; the EWMA smooths it across
// epochs so a single noisy round cannot move the gate much.
//
// The screen never touches an honest-looking update: a clean run with all
// norms under the threshold passes through bit-identically. It maintains
// per-run state (the running median) and is not safe for concurrent use;
// the trainer calls it serially once per epoch.
type UpdateScreen struct {
	cfg ScreenConfig
	med float64
	ok  bool // med is initialized
}

var _ hfl.Screener = (*UpdateScreen)(nil)

// NewUpdateScreen validates the configuration and fills defaults.
func NewUpdateScreen(cfg ScreenConfig) (*UpdateScreen, error) {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("robust: screen Lambda %v outside [0,1]", cfg.Lambda)
	}
	if cfg.ClipFactor == 0 {
		cfg.ClipFactor = 3
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.3
	}
	return &UpdateScreen{cfg: cfg}, nil
}

// MustNewUpdateScreen is NewUpdateScreen panicking on invalid
// configuration.
func MustNewUpdateScreen(cfg ScreenConfig) *UpdateScreen {
	s, err := NewUpdateScreen(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ClipNow rescales delta in place against the screen's current threshold —
// ClipFactor × the running median as of the last completed round — and
// returns the pre-clip L2 norm and whether it clipped. This is the
// streaming-ingest variant of Screen: a fold-on-arrival server cannot know
// the in-flight round's median before folding, so streamed rounds clip
// against the state of the rounds already closed (the first round clips
// nothing) and advance the median afterwards via ObserveNorms. Callers
// handle shape and finiteness themselves (the wire layer rejects both
// before clipping is reached).
func (s *UpdateScreen) ClipNow(delta []float64) (norm float64, clipped bool) {
	var n2 float64
	for _, v := range delta {
		n2 += v * v
	}
	norm = math.Sqrt(n2)
	if !s.ok || s.cfg.ClipFactor < 0 {
		return norm, false
	}
	threshold := s.cfg.ClipFactor * s.med
	if threshold <= 0 || norm <= threshold {
		return norm, false
	}
	scale := threshold / norm
	for j := range delta {
		delta[j] *= scale
	}
	return norm, true
}

// ObserveNorms folds one closed round's pre-clip update norms into the
// running median EWMA — the state ClipNow reads. Norm order does not matter
// (the median is order-invariant), so a streaming server may record norms
// in arrival order and still stay deterministic. An empty round leaves the
// state untouched.
func (s *UpdateScreen) ObserveNorms(norms []float64) {
	if len(norms) == 0 {
		return
	}
	sorted := append([]float64(nil), norms...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	if !s.ok {
		s.med, s.ok = med, true
		return
	}
	s.med = (1-s.cfg.Lambda)*s.med + s.cfg.Lambda*med
}

// Screen implements hfl.Screener: it returns the positions of the updates
// to reject (wrong length against the broadcast model, or any non-finite
// coordinate) and rescales over-norm survivors in place.
func (s *UpdateScreen) Screen(ep *hfl.Epoch, reported []int) ([]int, error) {
	p := len(ep.Theta)
	var drop []int
	norms := make([]float64, 0, len(ep.Deltas))
	normAt := make([]float64, len(ep.Deltas))
	for k, d := range ep.Deltas {
		part := k
		if k < len(reported) {
			part = reported[k]
		}
		if len(d) != p {
			drop = append(drop, k)
			obs.Emit(s.cfg.Sink, obs.Event{Kind: obs.KindUpdateRejected, T: ep.T, Part: part})
			continue
		}
		var n2 float64
		finite := true
		for _, v := range d {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
			n2 += v * v
		}
		if !finite || math.IsInf(n2, 0) {
			drop = append(drop, k)
			obs.Emit(s.cfg.Sink, obs.Event{Kind: obs.KindUpdateRejected, T: ep.T, Part: part})
			continue
		}
		normAt[k] = math.Sqrt(n2)
		norms = append(norms, normAt[k])
	}
	if len(norms) == 0 || s.cfg.ClipFactor < 0 {
		return drop, nil
	}
	sort.Float64s(norms)
	med := norms[len(norms)/2]
	if len(norms)%2 == 0 {
		med = (norms[len(norms)/2-1] + norms[len(norms)/2]) / 2
	}
	if !s.ok {
		s.med, s.ok = med, true
	} else {
		s.med = (1-s.cfg.Lambda)*s.med + s.cfg.Lambda*med
	}
	threshold := s.cfg.ClipFactor * s.med
	if threshold <= 0 {
		return drop, nil
	}
	dropped := make(map[int]bool, len(drop))
	for _, k := range drop {
		dropped[k] = true
	}
	for k, d := range ep.Deltas {
		if dropped[k] || normAt[k] <= threshold {
			continue
		}
		scale := threshold / normAt[k]
		for j := range d {
			d[j] *= scale
		}
		part := k
		if k < len(reported) {
			part = reported[k]
		}
		obs.Emit(s.cfg.Sink, obs.Event{Kind: obs.KindUpdateClipped, T: ep.T,
			Part: part, Value: normAt[k]})
	}
	return drop, nil
}
