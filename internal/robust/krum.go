package robust

import (
	"fmt"
	"math"
	"sort"

	"digfl/internal/hfl"
	"digfl/internal/tensor"
)

// Krum aggregates by selecting the single local update closest to its
// peers (Blanchard et al., NeurIPS 2017): each update is scored by the sum
// of squared distances to its n−F−2 nearest neighbors, and the lowest
// score wins. Krum tolerates up to F Byzantine participants out of n when
// n ≥ 2F+3.
type Krum struct {
	// F is the number of Byzantine participants to tolerate.
	F int
}

var (
	_ hfl.Aggregator   = Krum{}
	_ hfl.BufferedRule = Krum{}
)

// NeedsBuffer implements hfl.BufferedRule: pairwise distances need every
// update of the round materialized at once; Krum cannot stream.
func (Krum) NeedsBuffer() bool { return true }

// Aggregate implements hfl.Aggregator: the selected update is returned
// as the global step. On a degraded (partial-participation) epoch with too
// few survivors for the configured F, the neighbor count shrinks to the
// largest feasible value instead of failing the round.
func (k Krum) Aggregate(ep *hfl.Epoch) ([]float64, error) {
	sel, err := krumSelect(ep, k.F, 1)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ep.Deltas[sel[0]]))
	copy(out, ep.Deltas[sel[0]])
	return out, nil
}

// MultiKrum averages the M best-Krum-scored updates — the multi-Krum
// variant trading some robustness back for convergence speed.
type MultiKrum struct {
	// F is the number of Byzantine participants to tolerate.
	F int
	// M is the number of selected updates to average; it must satisfy
	// 0 < M ≤ n−F on full-participation epochs. M = 1 is exactly Krum.
	M int
}

var (
	_ hfl.Aggregator   = MultiKrum{}
	_ hfl.BufferedRule = MultiKrum{}
)

// NeedsBuffer implements hfl.BufferedRule: like Krum, the pairwise-distance
// selection needs the full round buffer.
func (MultiKrum) NeedsBuffer() bool { return true }

// Aggregate implements hfl.Aggregator. Degraded epochs clamp M (and the
// neighbor count) to the survivors instead of failing the round.
func (m MultiKrum) Aggregate(ep *hfl.Epoch) ([]float64, error) {
	sel, err := krumSelect(ep, m.F, m.M)
	if err != nil {
		return nil, err
	}
	p := len(ep.Deltas[sel[0]])
	out := make([]float64, p)
	inv := 1 / float64(len(sel))
	for _, k := range sel {
		tensor.AXPY(inv, ep.Deltas[k], out)
	}
	return out, nil
}

// krumSelect scores every update and returns the positions of the m
// lowest-scored ones, best first.
func krumSelect(ep *hfl.Epoch, f, m int) ([]int, error) {
	n := len(ep.Deltas)
	if _, err := checkShapes(ep); err != nil {
		return nil, err
	}
	if f < 0 {
		return nil, fmt.Errorf("robust: negative Krum F %d", f)
	}
	if m < 1 {
		return nil, fmt.Errorf("robust: Multi-Krum M %d must be positive", m)
	}
	neighbors := n - f - 2
	if degraded := ep.Reported != nil; n < 2*f+3 || m > n-f {
		if !degraded {
			return nil, fmt.Errorf("robust: Krum F=%d M=%d infeasible for %d participants (need n ≥ 2F+3 and M ≤ n−F)", f, m, n)
		}
		// Survivor epoch: keep the round alive with the best feasible
		// parameters. With ≤ 2 survivors there are no meaningful distance
		// scores; fall back to selecting everyone (a plain mean for
		// Multi-Krum, the first survivor for Krum).
		if neighbors < 1 {
			neighbors = n - 2
		}
		if neighbors < 1 {
			neighbors = 1
		}
		if m > n {
			m = n
		}
	}
	if n == 1 {
		return []int{0}, nil
	}
	if neighbors > n-1 {
		neighbors = n - 1
	}
	// Pairwise squared distances; O(n²·p), fine at federation scale.
	scores := make([]float64, n)
	dists := make([]float64, n-1)
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			var d2 float64
			for c, v := range ep.Deltas[i] {
				diff := v - ep.Deltas[j][c]
				d2 += diff * diff
			}
			dists = append(dists, d2)
		}
		sort.Float64s(dists)
		var s float64
		for _, d2 := range dists[:neighbors] {
			s += d2
		}
		// Non-finite updates must never win the selection.
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		scores[i] = s
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	return order[:m], nil
}

// NormBound clips every update to an L2 norm of at most MaxNorm and
// averages the results — the simplest magnitude defense, neutralizing
// scaled model poisoning without touching update directions.
type NormBound struct {
	// MaxNorm is the per-update L2 ceiling; it must be positive.
	MaxNorm float64
}

var (
	_ hfl.Aggregator   = NormBound{}
	_ hfl.BufferedRule = NormBound{}
)

// NeedsBuffer implements hfl.BufferedRule: per-update clipping is
// independent across updates, so NormBound is the one robust rule that does
// not require the round buffer — its streaming equivalent is ingest-time
// clipping (UpdateScreen.ClipNow) composed with hfl.MeanStream. The
// Aggregator form here still runs on the buffered path.
func (NormBound) NeedsBuffer() bool { return false }

// Aggregate implements hfl.Aggregator. The epoch's deltas are not
// mutated; clipping happens on the accumulation.
func (b NormBound) Aggregate(ep *hfl.Epoch) ([]float64, error) {
	if b.MaxNorm <= 0 {
		return nil, fmt.Errorf("robust: NormBound MaxNorm %v must be positive", b.MaxNorm)
	}
	p, err := checkShapes(ep)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p)
	inv := 1 / float64(len(ep.Deltas))
	for _, d := range ep.Deltas {
		norm := math.Sqrt(tensor.Dot(d, d))
		scale := inv
		if norm > b.MaxNorm {
			scale = inv * b.MaxNorm / norm
		}
		tensor.AXPY(scale, d, out)
	}
	return out, nil
}
