package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Every index must run exactly once, for any worker count.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 257
		counts := make([]atomic.Int32, n)
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// The pool must never exceed the requested worker budget: the peak number
// of concurrently running iterations stays ≤ workers no matter how the
// scheduler interleaves them.
func TestForRespectsWorkerBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	For(256, workers, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched() // widen the window in which overlap is observable
		inFlight.Add(-1)
	})
	if p := peak.Load(); int(p) > workers {
		t.Fatalf("observed %d concurrent iterations, budget %d", p, workers)
	}
	// And with a budget far above n, fan-out is still capped at n.
	inFlight.Store(0)
	peak.Store(0)
	For(4, 1000, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent iterations for n=4", p)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-5, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for non-positive n")
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(7) != 7 {
		t.Fatal("positive worker count must pass through")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive worker count must resolve to at least 1")
	}
}

// Map output must be bit-identical across worker counts.
func TestMapDeterministic(t *testing.T) {
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	want := Map(1000, 1, fn)
	for _, workers := range []int{2, 4, 16} {
		got := Map(1000, workers, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// MapReduce must give the same bits for every worker count, because the
// chunked reduction order is fixed by (n, chunk) alone. Floating-point
// addition is non-associative, so this fails for any scheme that reduces in
// completion order.
func TestMapReduceDeterministicAcrossWorkers(t *testing.T) {
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	sum := func(a, b float64) float64 { return a + b }
	for _, n := range []int{1, 63, 64, 65, 1000} {
		want := MapReduce(n, 1, 0, fn, sum)
		for _, workers := range []int{2, 3, 8, 32} {
			if got := MapReduce(n, workers, 0, fn, sum); got != want {
				t.Fatalf("n=%d workers=%d: %v != %v", n, workers, got, want)
			}
		}
	}
}

// With chunk = 1 every element is its own partial, so the fixed reduction
// order reproduces the serial left fold exactly even for non-associative ⊕.
func TestMapReduceChunk1MatchesSerialFold(t *testing.T) {
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	var serial float64
	for i := 0; i < 500; i++ {
		serial += fn(i)
	}
	got := MapReduce(500, 8, 1, fn, func(a, b float64) float64 { return a + b })
	if got != serial {
		t.Fatalf("chunk-1 MapReduce %v != serial fold %v", got, serial)
	}
}

func TestMapReducePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n = 0")
		}
	}()
	MapReduce(0, 4, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
}
