// Package parallel is the shared bounded worker-pool runtime behind every
// concurrent hot path in the repository: the HFL trainer's per-participant
// local updates, the interactive estimator's HVP loop, the Paillier
// vector operations of the secure VFL protocol, and the exact-Shapley
// coalition sweep. DIG-FL's pitch is contribution evaluation at (near) zero
// extra cost, so the evaluation pipeline's wall-clock matters as much as its
// utility-call count; this package bounds fan-out to a fixed worker budget
// (no goroutine-per-participant explosions at production participant counts)
// while keeping every result bit-identical to the serial path.
//
// Determinism contract: For and Map schedule iterations dynamically but each
// iteration writes only its own slot, so outputs never depend on worker
// count or interleaving. MapReduce additionally fixes the reduction
// association — serial within fixed-size chunks, chunk partials combined in
// ascending chunk order — so its result depends only on (n, chunk), never on
// workers or scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"digfl/internal/obs"
)

// Workers resolves a requested worker count: w > 0 is used as-is; zero or
// negative selects runtime.GOMAXPROCS(0), the default worker budget.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on a bounded pool of at most
// Workers(workers) goroutines. Iterations are claimed dynamically from a
// shared counter, so uneven per-iteration cost balances automatically. fn
// must be safe for concurrent invocation when workers permits more than one
// goroutine; with a single worker (or n ≤ 1) fn runs on the calling
// goroutine with no synchronization at all, making For(n, 1, fn) an exact
// drop-in for the serial loop.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForObs is For plus observability: after the loop completes it emits one
// KindPoolTask event carrying the number of tasks executed and the
// effective worker count. With a nil sink it is exactly For — the event is
// never constructed.
func ForObs(n, workers int, sink obs.Sink, fn func(i int)) {
	For(n, workers, fn)
	if sink != nil && n > 0 {
		w := Workers(workers)
		if w > n {
			w = n
		}
		sink.Emit(obs.Event{Kind: obs.KindPoolTask, N: int64(n), Workers: w})
	}
}

// Map returns out where out[i] = fn(i), computed on the bounded pool. Each
// iteration writes only its own slot, so the result is identical for every
// worker count.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// DefaultChunk is the MapReduce chunk size used when chunk ≤ 0: large
// enough to amortize scheduling, small enough to load-balance across a
// typical worker budget.
const DefaultChunk = 64

// MapReduce computes fn(0) ⊕ fn(1) ⊕ … ⊕ fn(n−1) on the bounded pool with a
// fixed association: [0, n) is split into contiguous chunks of the given
// size (DefaultChunk when chunk ≤ 0), each chunk is reduced serially in
// index order, and the chunk partials are combined serially in ascending
// chunk order. Because the chunking depends only on n and chunk — never on
// workers — the result is deterministic for any worker count, and for an
// associative ⊕ it equals the serial left fold. n must be at least 1.
func MapReduce[T any](n, workers, chunk int, fn func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		panic("parallel: MapReduce needs n >= 1")
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	chunks := (n + chunk - 1) / chunk
	partials := make([]T, chunks)
	For(chunks, workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		acc := fn(lo)
		for i := lo + 1; i < hi; i++ {
			acc = combine(acc, fn(i))
		}
		partials[c] = acc
	})
	acc := partials[0]
	for c := 1; c < chunks; c++ {
		acc = combine(acc, partials[c])
	}
	return acc
}
