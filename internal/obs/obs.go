// Package obs is the observability layer: a zero-dependency event substrate
// every hot path in the repository reports into — trainer epochs, local
// updates, aggregation, estimator rounds, Paillier ciphertext operations,
// and worker-pool batches. A run with no sink attached pays only a nil
// check per instrumentation point (no allocations, no clock reads); a run
// with a sink attached gets a full account of where its wall-clock and its
// ciphertext budget went, which is how the paper's computation- and
// communication-cost tables are produced from real counters instead of
// hand-derived formulas.
//
// The package ships two sinks: Collector, a lock-free atomic aggregator
// whose Snapshot is cheap enough to read mid-run, and TraceWriter, a JSONL
// trace using the same non-finite-safe float encoding as the training-log
// archive (internal/jsonf). Tee fans events out to several sinks.
//
// Observability never perturbs results: sinks only receive copies of
// scalar measurements, so attaching one leaves every output bit-identical.
package obs

import (
	"runtime"
	"time"
)

// Kind discriminates the event taxonomy.
type Kind uint8

const (
	// KindEpochStart marks the beginning of training round T.
	KindEpochStart Kind = iota
	// KindEpochEnd closes round T; Dur is the full round wall-clock and
	// Value the post-round validation loss.
	KindEpochEnd
	// KindLocalUpdate is one participant's local training in round T;
	// Part is the global participant index and Dur the local wall-clock.
	KindLocalUpdate
	// KindAggregate is the server's combination of local updates in round
	// T; N is the number of updates combined.
	KindAggregate
	// KindEstimatorRound is one DIG-FL estimator observation of round T;
	// Dur covers the whole per-participant loop (in Interactive mode,
	// dominated by the Hessian-vector products) and N is the number of
	// participants processed.
	KindEstimatorRound
	// KindPaillierEnc counts N Paillier encryptions.
	KindPaillierEnc
	// KindPaillierDec counts N Paillier decryptions.
	KindPaillierDec
	// KindPaillierAdd counts N homomorphic additions (ciphertext +
	// ciphertext or ciphertext + plaintext).
	KindPaillierAdd
	// KindPaillierMulPlain counts N ciphertext-by-plaintext multiplications.
	KindPaillierMulPlain
	// KindPoolTask is one bounded-pool batch: N tasks executed on Workers
	// goroutines.
	KindPoolTask
	// KindDropout marks participant Part dropping out of round T (an
	// injected or observed partial-participation epoch).
	KindDropout
	// KindStraggler marks participant Part straggling in round T; Dur is
	// the injected delay.
	KindStraggler
	// KindRetry marks a failed secure-protocol round in epoch T being
	// retried; N is the attempt number that failed (1-based).
	KindRetry
	// KindCrash marks an injected crash at the start of round T.
	KindCrash
	// KindCheckpoint marks trainer state persisted after round T.
	KindCheckpoint
	// KindResume marks training resuming from a checkpoint at round T.
	KindResume
	// KindNetRoundStart marks the networked coordinator opening round T to
	// its participants; N is the number of participants expected to report.
	KindNetRoundStart
	// KindNetRoundEnd marks the coordinator closing networked round T; N is
	// the number of participants that reported in time and Dur the round's
	// open-to-close wall clock (the paper's per-round network latency).
	KindNetRoundEnd
	// KindNetRequest is one wire-protocol request: handled, on the
	// coordinator side, or attempted, on the participant side. Part is the
	// participant index when known.
	KindNetRequest
	// KindNetTimeout marks participant Part missing networked round T's
	// deadline; the round proceeds with the survivors (Epoch.Reported).
	KindNetTimeout
	// KindAttackInjected marks an adversarial participant Part corrupting
	// its round-T update (internal/adversary simulators, or a poisoned shard
	// planted at setup, in which case T is 0).
	KindAttackInjected
	// KindUpdateRejected marks participant Part's round-T update being
	// dropped before aggregation — wrong shape, non-finite values, or a
	// wire-level validation failure on the networked coordinator. The epoch
	// proceeds without it (Epoch.Reported survivor semantics).
	KindUpdateRejected
	// KindUpdateClipped marks participant Part's round-T update being
	// norm-clipped by the server-side screen; Value is the pre-clip L2 norm.
	KindUpdateClipped
	// KindQuarantine marks participant Part being demoted to zero
	// aggregation weight after round T by the contribution-guided
	// quarantine policy.
	KindQuarantine
	// KindSample marks round T running on a sampled cohort; N is the cohort
	// size (the rest of the population sits the round out with zero φ).
	KindSample
	// KindNetBytesRx counts N request-body bytes received by a wire-protocol
	// server (coordinator or edge aggregator).
	KindNetBytesRx
	// KindNetBytesTx counts N response-body bytes written by a wire-protocol
	// server. Rx+Tx is the run's bytes-on-wire as the server saw them.
	KindNetBytesTx
	// KindCodecV1Frame counts a bulk payload (update, partial, or round
	// broadcast) carried in the digfl-fednet/1 JSON encoding.
	KindCodecV1Frame
	// KindCodecV2Frame counts a bulk payload carried in the digfl-fednet/2
	// binary encoding.
	KindCodecV2Frame
	// KindWALAppend counts one record appended to the coordinator's
	// write-ahead journal; N is the record's size in bytes (header
	// included), so the counter sums to the run's bytes journaled.
	KindWALAppend
	// KindRecover marks a restarted coordinator finishing WAL replay; T is
	// the epoch the recovered run resumes in and N the number of journal
	// records replayed.
	KindRecover
	// KindRejoin marks participant Part re-joining a restarted coordinator
	// after a 503 recovering reply or an instance-token change.
	KindRejoin
	// KindEdgeFailover marks participant Part falling back to submitting
	// its round-T update directly to the root after its edge aggregator
	// died mid-round.
	KindEdgeFailover
	// KindAsyncCommit marks asynchronous round T committing its quorum cut;
	// N is the number of updates in the commit set.
	KindAsyncCommit
	// KindStaleFold marks participant Part's stale update folding into
	// round T at a staleness discount; N is the staleness in epochs.
	KindStaleFold
	// KindStaleReject marks participant Part's buffered update being
	// rejected at round T for exceeding the staleness window; N is the
	// staleness it had reached.
	KindStaleReject

	numKinds
)

var kindNames = [numKinds]string{
	KindEpochStart:       "epoch_start",
	KindEpochEnd:         "epoch_end",
	KindLocalUpdate:      "local_update",
	KindAggregate:        "aggregate",
	KindEstimatorRound:   "estimator_round",
	KindPaillierEnc:      "paillier_enc",
	KindPaillierDec:      "paillier_dec",
	KindPaillierAdd:      "paillier_add",
	KindPaillierMulPlain: "paillier_mul_plain",
	KindPoolTask:         "pool_task",
	KindDropout:          "dropout",
	KindStraggler:        "straggler",
	KindRetry:            "retry",
	KindCrash:            "crash",
	KindCheckpoint:       "checkpoint",
	KindResume:           "resume",
	KindNetRoundStart:    "net_round_start",
	KindNetRoundEnd:      "net_round_end",
	KindNetRequest:       "net_request",
	KindNetTimeout:       "net_timeout",
	KindAttackInjected:   "attack_injected",
	KindUpdateRejected:   "update_rejected",
	KindUpdateClipped:    "update_clipped",
	KindQuarantine:       "quarantine",
	KindSample:           "sample",
	KindNetBytesRx:       "net_bytes_rx",
	KindNetBytesTx:       "net_bytes_tx",
	KindCodecV1Frame:     "codec_v1_frame",
	KindCodecV2Frame:     "codec_v2_frame",
	KindWALAppend:        "wal_append",
	KindRecover:          "recover",
	KindRejoin:           "rejoin",
	KindEdgeFailover:     "edge_failover",
	KindAsyncCommit:      "async_commit",
	KindStaleFold:        "stale_fold",
	KindStaleReject:      "stale_reject",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed observation. Events are small value types; emitting
// one never allocates.
type Event struct {
	// Kind discriminates the event.
	Kind Kind
	// T is the 1-based training round the event belongs to; 0 when the
	// event is not tied to a round (pool batches, Paillier op batches
	// outside an epoch).
	T int
	// Part is the global participant index; meaningful only for
	// KindLocalUpdate events.
	Part int
	// N is the batch size: operations in a batched Paillier event, updates
	// combined in an aggregate, participants in an estimator round, tasks
	// in a pool batch.
	N int64
	// Workers is the effective worker count of a KindPoolTask event.
	Workers int
	// Dur is the measured duration of timed events (EpochEnd, LocalUpdate,
	// Aggregate, EstimatorRound); 0 elsewhere.
	Dur time.Duration
	// Value is a kind-specific measurement: the validation loss for
	// KindEpochEnd. It may be NaN or ±Inf in diverged runs; the trace
	// writer encodes those losslessly.
	Value float64
}

// Sink receives events. Implementations must be safe for concurrent use:
// instrumented hot paths emit from pool workers. Emit must not retain
// pointers into the event (it has none) and should return quickly — slow
// sinks stall the instrumented path, not the results.
type Sink interface {
	Emit(e Event)
}

// Emit forwards e to s when s is non-nil. The nil check is the entire cost
// of instrumentation when observability is off: no allocation, no clock
// read, one well-predicted branch.
func Emit(s Sink, e Event) {
	if s != nil {
		s.Emit(e)
	}
}

// Start returns the current time when a sink is attached and the zero Time
// otherwise, so uninstrumented runs never touch the clock.
func Start(s Sink) time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since returns the elapsed time since a Start(s) timestamp, or 0 when no
// sink is attached.
func Since(s Sink, t0 time.Time) time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(t0)
}

// Runtime is the unified runtime surface every trainer, estimator, and the
// secure protocol accept: one worker budget and one observability sink,
// replacing the per-struct Parallel/Workers knobs that grew independently.
//
// Workers resolves as: 0 defers to the enclosing struct's deprecated legacy
// fields (and to serial where no legacy field exists), 1 forces the serial
// path, > 1 sets the bounded-pool size, and negative selects GOMAXPROCS.
// A non-zero Workers always wins over the legacy fields.
type Runtime struct {
	// Workers is the bounded worker-pool budget; see the struct comment
	// for the resolution rule.
	Workers int
	// Sink receives observability events; nil (the default) disables
	// instrumentation at the cost of one branch per instrumentation point.
	Sink Sink
}

// Resolve collapses the repository's historical three-way parallelism
// configuration (Runtime.Workers plus each component's deprecated legacy
// fields) into the one effective pool size every concurrent hot path uses.
// legacy is the component's deprecated fallback request, pre-mapped to the
// shared convention: > 0 is an explicit pool size, negative selects
// GOMAXPROCS, and 0 selects the serial path. Runtime.Workers follows the
// same convention and, when non-zero, always wins over legacy. Components
// without a legacy field pass 0.
func (r Runtime) Resolve(legacy int) int {
	w := r.Workers
	if w == 0 {
		w = legacy
	}
	switch {
	case w > 0:
		return w
	case w < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}
