package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"digfl/internal/jsonf"
)

// Snapshot is a point-in-time aggregate of everything a Collector has seen.
// Counter fields are exact: for a run with known dimensions they match the
// closed-form operation counts of the instrumented algorithms (asserted for
// Algorithm 3 in internal/vfl's tests).
type Snapshot struct {
	// Epochs is the number of completed training rounds (EpochEnd events).
	Epochs int64
	// LocalUpdates counts per-participant local trainings.
	LocalUpdates int64
	// Aggregates counts server-side update combinations.
	Aggregates int64
	// EstimatorRounds counts DIG-FL estimator observations.
	EstimatorRounds int64
	// PaillierEnc/Dec/Add/MulPlain are exact homomorphic operation counts.
	PaillierEnc, PaillierDec, PaillierAdd, PaillierMulPlain int64
	// PoolBatches counts bounded-pool fan-outs, PoolTasks the tasks they
	// executed, and PoolWorkersMax the widest effective worker count seen.
	PoolBatches, PoolTasks int64
	PoolWorkersMax         int64
	// Dropouts, Stragglers, Retries, Crashes, Checkpoints and Resumes
	// count fault-tolerance events: degraded-epoch participations, secure
	// round retries, injected crashes, and checkpoint/resume boundaries.
	Dropouts, Stragglers, Retries int64
	Crashes, Checkpoints, Resumes int64
	// NetRounds, NetRequests and NetTimeouts count networked-runtime
	// events: closed coordinator rounds, wire-protocol requests, and
	// participants that missed a round deadline. NetRoundTime is the
	// summed open-to-close wall clock of the closed rounds.
	NetRounds, NetRequests, NetTimeouts int64
	NetRoundTime                        time.Duration
	// NetBytesRx and NetBytesTx are the request-body bytes received and
	// response-body bytes written by wire-protocol servers; their sum is the
	// run's bytes-on-wire. CodecV1Frames and CodecV2Frames count bulk
	// payloads (updates, partials, round broadcasts) carried in the JSON and
	// binary encodings respectively.
	NetBytesRx, NetBytesTx       int64
	CodecV1Frames, CodecV2Frames int64
	// WALAppends and WALBytes count coordinator journal records and their
	// total size; Recoveries, Rejoins and EdgeFailovers count crash-safety
	// events: coordinator WAL replays, participant re-joins after a
	// coordinator restart, and member fallbacks to the root after an edge
	// died mid-round.
	WALAppends, WALBytes               int64
	Recoveries, Rejoins, EdgeFailovers int64
	// AsyncCommits, StaleFolds and StaleRejects count the asynchronous
	// commit policy's events: epoch quorum cuts, stale updates folded at a
	// staleness discount, and buffered updates rejected for exceeding the
	// staleness window.
	AsyncCommits, StaleFolds, StaleRejects int64
	// AttacksInjected, UpdatesRejected, UpdatesClipped and Quarantines
	// count adversarial-robustness events: simulated update corruptions,
	// updates dropped by screening or wire validation, updates norm-clipped
	// by the screen, and participants demoted by the quarantine policy.
	AttacksInjected, UpdatesRejected, UpdatesClipped, Quarantines int64
	// EpochTime, LocalUpdateTime, AggregateTime and EstimatorTime are the
	// summed durations of the corresponding timed events. LocalUpdateTime
	// can exceed EpochTime when local updates run in parallel — it is CPU
	// time across workers, not wall-clock.
	EpochTime, LocalUpdateTime, AggregateTime, EstimatorTime time.Duration
}

// PaillierOps returns the total homomorphic operation count.
func (s Snapshot) PaillierOps() int64 {
	return s.PaillierEnc + s.PaillierDec + s.PaillierAdd + s.PaillierMulPlain
}

// String renders the snapshot as the compact one-run summary the CLI
// prints.
func (s Snapshot) String() string {
	out := fmt.Sprintf("epochs=%d (%.3fs) local_updates=%d (%.3fs) aggregates=%d estimator_rounds=%d (%.3fs)",
		s.Epochs, s.EpochTime.Seconds(), s.LocalUpdates, s.LocalUpdateTime.Seconds(),
		s.Aggregates, s.EstimatorRounds, s.EstimatorTime.Seconds())
	if ops := s.PaillierOps(); ops > 0 {
		out += fmt.Sprintf(" paillier[enc=%d dec=%d add=%d mul=%d]",
			s.PaillierEnc, s.PaillierDec, s.PaillierAdd, s.PaillierMulPlain)
	}
	if s.PoolBatches > 0 {
		out += fmt.Sprintf(" pool[batches=%d tasks=%d max_workers=%d]",
			s.PoolBatches, s.PoolTasks, s.PoolWorkersMax)
	}
	if s.Dropouts+s.Stragglers+s.Retries+s.Crashes+s.Checkpoints+s.Resumes > 0 {
		out += fmt.Sprintf(" faults[drop=%d straggle=%d retry=%d crash=%d ckpt=%d resume=%d]",
			s.Dropouts, s.Stragglers, s.Retries, s.Crashes, s.Checkpoints, s.Resumes)
	}
	if s.NetRounds+s.NetRequests+s.NetTimeouts > 0 {
		out += fmt.Sprintf(" net[rounds=%d (%.3fs) reqs=%d timeouts=%d]",
			s.NetRounds, s.NetRoundTime.Seconds(), s.NetRequests, s.NetTimeouts)
	}
	if s.NetBytesRx+s.NetBytesTx+s.CodecV1Frames+s.CodecV2Frames > 0 {
		out += fmt.Sprintf(" wire[rx=%dB tx=%dB v1=%d v2=%d]",
			s.NetBytesRx, s.NetBytesTx, s.CodecV1Frames, s.CodecV2Frames)
	}
	if s.WALAppends+s.Recoveries+s.Rejoins+s.EdgeFailovers > 0 {
		out += fmt.Sprintf(" crash[wal=%d (%dB) recover=%d rejoin=%d failover=%d]",
			s.WALAppends, s.WALBytes, s.Recoveries, s.Rejoins, s.EdgeFailovers)
	}
	if s.AsyncCommits+s.StaleFolds+s.StaleRejects > 0 {
		out += fmt.Sprintf(" async[commits=%d folds=%d rejects=%d]",
			s.AsyncCommits, s.StaleFolds, s.StaleRejects)
	}
	if s.AttacksInjected+s.UpdatesRejected+s.UpdatesClipped+s.Quarantines > 0 {
		out += fmt.Sprintf(" adv[attacks=%d rejected=%d clipped=%d quarantined=%d]",
			s.AttacksInjected, s.UpdatesRejected, s.UpdatesClipped, s.Quarantines)
	}
	return out
}

// Collector is the in-memory aggregator sink: every counter is an atomic,
// so emission from concurrent pool workers never contends on a lock and
// Snapshot can be read while a run is in flight. The zero value is ready
// to use.
type Collector struct {
	epochs, localUpdates, aggregates, estimatorRounds       atomic.Int64
	paillierEnc, paillierDec, paillierAdd, paillierMulPlain atomic.Int64
	poolBatches, poolTasks, poolWorkersMax                  atomic.Int64
	epochNanos, localUpdateNanos, aggregateNanos, estNanos  atomic.Int64
	dropouts, stragglers, retries                           atomic.Int64
	crashes, checkpoints, resumes                           atomic.Int64
	netRounds, netRequests, netTimeouts, netRoundNanos      atomic.Int64
	attacksInjected, updatesRejected                        atomic.Int64
	updatesClipped, quarantines                             atomic.Int64
	netBytesRx, netBytesTx                                  atomic.Int64
	codecV1Frames, codecV2Frames                            atomic.Int64
	walAppends, walBytes                                    atomic.Int64
	recoveries, rejoins, edgeFailovers                      atomic.Int64
	asyncCommits, staleFolds, staleRejects                  atomic.Int64
}

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	switch e.Kind {
	case KindEpochStart:
		// Counted at EpochEnd so Epochs means completed rounds.
	case KindEpochEnd:
		c.epochs.Add(1)
		c.epochNanos.Add(int64(e.Dur))
	case KindLocalUpdate:
		c.localUpdates.Add(1)
		c.localUpdateNanos.Add(int64(e.Dur))
	case KindAggregate:
		c.aggregates.Add(1)
		c.aggregateNanos.Add(int64(e.Dur))
	case KindEstimatorRound:
		c.estimatorRounds.Add(1)
		c.estNanos.Add(int64(e.Dur))
	case KindPaillierEnc:
		c.paillierEnc.Add(e.N)
	case KindPaillierDec:
		c.paillierDec.Add(e.N)
	case KindPaillierAdd:
		c.paillierAdd.Add(e.N)
	case KindPaillierMulPlain:
		c.paillierMulPlain.Add(e.N)
	case KindPoolTask:
		c.poolBatches.Add(1)
		c.poolTasks.Add(e.N)
		for {
			cur := c.poolWorkersMax.Load()
			if int64(e.Workers) <= cur || c.poolWorkersMax.CompareAndSwap(cur, int64(e.Workers)) {
				break
			}
		}
	case KindDropout:
		c.dropouts.Add(1)
	case KindStraggler:
		c.stragglers.Add(1)
	case KindRetry:
		c.retries.Add(1)
	case KindCrash:
		c.crashes.Add(1)
	case KindCheckpoint:
		c.checkpoints.Add(1)
	case KindResume:
		c.resumes.Add(1)
	case KindNetRoundStart:
		// Counted at NetRoundEnd so NetRounds means closed rounds.
	case KindNetRoundEnd:
		c.netRounds.Add(1)
		c.netRoundNanos.Add(int64(e.Dur))
	case KindNetRequest:
		c.netRequests.Add(1)
	case KindNetTimeout:
		c.netTimeouts.Add(1)
	case KindAttackInjected:
		c.attacksInjected.Add(1)
	case KindUpdateRejected:
		c.updatesRejected.Add(1)
	case KindUpdateClipped:
		c.updatesClipped.Add(1)
	case KindQuarantine:
		c.quarantines.Add(1)
	case KindNetBytesRx:
		c.netBytesRx.Add(e.N)
	case KindNetBytesTx:
		c.netBytesTx.Add(e.N)
	case KindCodecV1Frame:
		c.codecV1Frames.Add(e.N)
	case KindCodecV2Frame:
		c.codecV2Frames.Add(e.N)
	case KindWALAppend:
		c.walAppends.Add(1)
		c.walBytes.Add(e.N)
	case KindRecover:
		c.recoveries.Add(1)
	case KindRejoin:
		c.rejoins.Add(1)
	case KindEdgeFailover:
		c.edgeFailovers.Add(1)
	case KindAsyncCommit:
		c.asyncCommits.Add(1)
	case KindStaleFold:
		c.staleFolds.Add(1)
	case KindStaleReject:
		c.staleRejects.Add(1)
	}
}

// Snapshot returns the current aggregate. It is safe to call concurrently
// with Emit; counters are read individually, so a snapshot taken mid-run is
// approximate across fields but exact per field.
func (c *Collector) Snapshot() Snapshot {
	return Snapshot{
		Epochs:           c.epochs.Load(),
		LocalUpdates:     c.localUpdates.Load(),
		Aggregates:       c.aggregates.Load(),
		EstimatorRounds:  c.estimatorRounds.Load(),
		PaillierEnc:      c.paillierEnc.Load(),
		PaillierDec:      c.paillierDec.Load(),
		PaillierAdd:      c.paillierAdd.Load(),
		PaillierMulPlain: c.paillierMulPlain.Load(),
		PoolBatches:      c.poolBatches.Load(),
		PoolTasks:        c.poolTasks.Load(),
		PoolWorkersMax:   c.poolWorkersMax.Load(),
		Dropouts:         c.dropouts.Load(),
		Stragglers:       c.stragglers.Load(),
		Retries:          c.retries.Load(),
		Crashes:          c.crashes.Load(),
		Checkpoints:      c.checkpoints.Load(),
		Resumes:          c.resumes.Load(),
		NetRounds:        c.netRounds.Load(),
		NetRequests:      c.netRequests.Load(),
		NetTimeouts:      c.netTimeouts.Load(),
		NetRoundTime:     time.Duration(c.netRoundNanos.Load()),
		NetBytesRx:       c.netBytesRx.Load(),
		NetBytesTx:       c.netBytesTx.Load(),
		CodecV1Frames:    c.codecV1Frames.Load(),
		CodecV2Frames:    c.codecV2Frames.Load(),
		WALAppends:       c.walAppends.Load(),
		WALBytes:         c.walBytes.Load(),
		Recoveries:       c.recoveries.Load(),
		Rejoins:          c.rejoins.Load(),
		EdgeFailovers:    c.edgeFailovers.Load(),
		AsyncCommits:     c.asyncCommits.Load(),
		StaleFolds:       c.staleFolds.Load(),
		StaleRejects:     c.staleRejects.Load(),
		AttacksInjected:  c.attacksInjected.Load(),
		UpdatesRejected:  c.updatesRejected.Load(),
		UpdatesClipped:   c.updatesClipped.Load(),
		Quarantines:      c.quarantines.Load(),
		EpochTime:        time.Duration(c.epochNanos.Load()),
		LocalUpdateTime:  time.Duration(c.localUpdateNanos.Load()),
		AggregateTime:    time.Duration(c.aggregateNanos.Load()),
		EstimatorTime:    time.Duration(c.estNanos.Load()),
	}
}

// traceHeader pins the trace file format.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

const (
	traceFormat  = "digfl-trace"
	traceVersion = 1
)

// traceEvent is the JSONL wire form of an Event. Value uses the shared
// sentinel encoding so NaN/±Inf validation losses (routine in diverged
// runs) cannot truncate the trace mid-stream.
type traceEvent struct {
	Kind    string    `json:"kind"`
	T       int       `json:"t,omitempty"`
	Part    int       `json:"part,omitempty"`
	N       int64     `json:"n,omitempty"`
	Workers int       `json:"workers,omitempty"`
	DurNS   int64     `json:"dur_ns,omitempty"`
	Value   jsonf.F64 `json:"value,omitempty"`
}

// TraceWriter is the JSONL trace sink: one header line, then one line per
// event, append- and stream-friendly like the training-log archive. It is
// safe for concurrent emission; events from parallel workers serialize on
// an internal mutex. Errors are sticky — the first write failure stops
// further output and is reported by Err, so a full disk never panics a
// training run.
type TraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTraceWriter starts a trace on w by writing the header line. The
// caller owns w; call Flush before closing it.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	t := &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
	t.err = t.enc.Encode(traceHeader{Format: traceFormat, Version: traceVersion})
	return t
}

// Emit implements Sink.
func (t *TraceWriter) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(traceEvent{
		Kind: e.Kind.String(), T: e.T, Part: e.Part, N: e.N,
		Workers: e.Workers, DurNS: int64(e.Dur), Value: jsonf.F64(e.Value),
	})
}

// Flush drains the internal buffer and returns the first error seen.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.bw.Flush()
	return t.err
}

// Err returns the sticky error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadTrace parses a trace written by TraceWriter back into events — the
// offline half of trace-based analysis (and of the offline_audit example).
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("obs: reading trace header: %w", err)
	}
	if h.Format != traceFormat {
		return nil, fmt.Errorf("obs: trace format %q, want %q", h.Format, traceFormat)
	}
	if h.Version < 1 || h.Version > traceVersion {
		return nil, fmt.Errorf("obs: unsupported trace version %d", h.Version)
	}
	kinds := make(map[string]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		kinds[k.String()] = k
	}
	var events []Event
	for {
		var te traceEvent
		if err := dec.Decode(&te); err != nil {
			if errors.Is(err, io.EOF) {
				return events, nil
			}
			return nil, fmt.Errorf("obs: reading trace event %d: %w", len(events), err)
		}
		k, ok := kinds[te.Kind]
		if !ok {
			return nil, fmt.Errorf("obs: trace event %d has unknown kind %q", len(events), te.Kind)
		}
		events = append(events, Event{
			Kind: k, T: te.T, Part: te.Part, N: te.N,
			Workers: te.Workers, Dur: time.Duration(te.DurNS), Value: float64(te.Value),
		})
	}
}

// tee fans events out to several sinks in order.
type tee []Sink

func (t tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// Tee returns a sink that forwards every event to each of the given sinks
// in order, skipping nils. It returns nil when no non-nil sink remains, so
// Tee(nil, nil) keeps the zero-cost no-op path.
func Tee(sinks ...Sink) Sink {
	var out tee
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
