package obs

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSnapshotExact feeds a known event mix and checks every counter.
func TestSnapshotExact(t *testing.T) {
	c := &Collector{}
	c.Emit(Event{Kind: KindEpochStart, T: 1})
	c.Emit(Event{Kind: KindLocalUpdate, T: 1, Part: 0, Dur: 3 * time.Millisecond})
	c.Emit(Event{Kind: KindLocalUpdate, T: 1, Part: 1, Dur: 5 * time.Millisecond})
	c.Emit(Event{Kind: KindAggregate, T: 1, N: 2, Dur: time.Millisecond})
	c.Emit(Event{Kind: KindEpochEnd, T: 1, Dur: 10 * time.Millisecond, Value: 0.5})
	c.Emit(Event{Kind: KindEstimatorRound, T: 1, N: 2, Dur: 2 * time.Millisecond})
	c.Emit(Event{Kind: KindPaillierEnc, N: 7})
	c.Emit(Event{Kind: KindPaillierDec, N: 3})
	c.Emit(Event{Kind: KindPaillierAdd, N: 11})
	c.Emit(Event{Kind: KindPaillierMulPlain, N: 13})
	c.Emit(Event{Kind: KindPoolTask, N: 4, Workers: 2})
	c.Emit(Event{Kind: KindPoolTask, N: 6, Workers: 3})

	got := c.Snapshot()
	want := Snapshot{
		Epochs: 1, LocalUpdates: 2, Aggregates: 1, EstimatorRounds: 1,
		PaillierEnc: 7, PaillierDec: 3, PaillierAdd: 11, PaillierMulPlain: 13,
		PoolBatches: 2, PoolTasks: 10, PoolWorkersMax: 3,
		EpochTime: 10 * time.Millisecond, LocalUpdateTime: 8 * time.Millisecond,
		AggregateTime: time.Millisecond, EstimatorTime: 2 * time.Millisecond,
	}
	if got != want {
		t.Fatalf("snapshot mismatch\n got %+v\nwant %+v", got, want)
	}
	if ops := got.PaillierOps(); ops != 7+3+11+13 {
		t.Fatalf("PaillierOps = %d, want %d", ops, 7+3+11+13)
	}
	s := got.String()
	for _, sub := range []string{"epochs=1", "local_updates=2", "paillier[enc=7", "pool[batches=2"} {
		if !strings.Contains(s, sub) {
			t.Errorf("Snapshot.String() = %q, missing %q", s, sub)
		}
	}
}

// TestConcurrentSinks hammers a Tee of both shipped sinks from many
// goroutines; the -race run is the assertion.
func TestConcurrentSinks(t *testing.T) {
	c := &Collector{}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	sink := Tee(c, tw)

	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Emit(sink, Event{Kind: KindLocalUpdate, T: i + 1, Part: g})
				Emit(sink, Event{Kind: KindPaillierAdd, N: 2})
				if i%10 == 0 {
					c.Snapshot() // concurrent reads must be safe too
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := c.Snapshot()
	if snap.LocalUpdates != goroutines*perG {
		t.Errorf("LocalUpdates = %d, want %d", snap.LocalUpdates, goroutines*perG)
	}
	if snap.PaillierAdd != 2*goroutines*perG {
		t.Errorf("PaillierAdd = %d, want %d", snap.PaillierAdd, 2*goroutines*perG)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*goroutines*perG {
		t.Errorf("trace has %d events, want %d", len(events), 2*goroutines*perG)
	}
}

// TestNilSinkZeroAlloc is the acceptance bound: instrumentation with no sink
// attached must not allocate.
func TestNilSinkZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := Start(nil)
		Emit(nil, Event{Kind: KindLocalUpdate, T: 1, Part: 2, Dur: Since(nil, t0)})
		Emit(nil, Event{Kind: KindEpochEnd, T: 1, Value: 0.25})
	})
	if allocs != 0 {
		t.Fatalf("nil-sink instrumentation allocates %v per op, want 0", allocs)
	}
}

// TestStartSinceNil checks the no-clock contract of the timing helpers.
func TestStartSinceNil(t *testing.T) {
	if t0 := Start(nil); !t0.IsZero() {
		t.Errorf("Start(nil) = %v, want zero time", t0)
	}
	if d := Since(nil, time.Time{}); d != 0 {
		t.Errorf("Since(nil, _) = %v, want 0", d)
	}
	c := &Collector{}
	t0 := Start(c)
	if t0.IsZero() {
		t.Error("Start(sink) returned the zero time")
	}
	if d := Since(c, t0); d < 0 {
		t.Errorf("Since(sink, t0) = %v, want >= 0", d)
	}
}

// TestTraceRoundTrip writes every kind, with non-finite values, and reads
// the identical events back.
func TestTraceRoundTrip(t *testing.T) {
	in := []Event{
		{Kind: KindEpochStart, T: 1},
		{Kind: KindLocalUpdate, T: 1, Part: 3, Dur: 1500 * time.Nanosecond},
		{Kind: KindAggregate, T: 1, N: 5, Dur: time.Microsecond},
		{Kind: KindEpochEnd, T: 1, Dur: time.Millisecond, Value: math.NaN()},
		{Kind: KindEpochEnd, T: 2, Value: math.Inf(1)},
		{Kind: KindEpochEnd, T: 3, Value: math.Inf(-1)},
		{Kind: KindEstimatorRound, T: 1, N: 5, Dur: 2 * time.Microsecond},
		{Kind: KindPaillierEnc, N: 10},
		{Kind: KindPaillierDec, N: 4},
		{Kind: KindPaillierAdd, N: 40},
		{Kind: KindPaillierMulPlain, N: 40},
		{Kind: KindPoolTask, N: 10, Workers: 2},
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, e := range in {
		tw.Emit(e)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"format":"digfl-trace","version":1}`) {
		t.Fatalf("trace missing header, got %q", buf.String()[:60])
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip produced %d events, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		// NaN breaks ==; compare Value bitwise-equivalently.
		if math.IsNaN(a.Value) != math.IsNaN(b.Value) ||
			(!math.IsNaN(a.Value) && a.Value != b.Value) {
			t.Errorf("event %d Value = %v, want %v", i, b.Value, a.Value)
		}
		a.Value, b.Value = 0, 0
		if a != b {
			t.Errorf("event %d = %+v, want %+v", i, b, a)
		}
	}
}

// TestReadTraceRejects checks header validation and unknown kinds.
func TestReadTraceRejects(t *testing.T) {
	cases := map[string]string{
		"wrong format":    `{"format":"not-a-trace","version":1}`,
		"future version":  `{"format":"digfl-trace","version":99}`,
		"unknown kind":    `{"format":"digfl-trace","version":1}` + "\n" + `{"kind":"warp_drive"}`,
		"truncated event": `{"format":"digfl-trace","version":1}` + "\n" + `{"kind":`,
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, in)
		}
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestTraceWriterStickyError checks that a write failure is latched and
// never panics the instrumented run.
func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(&failWriter{n: 16})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		tw.Emit(Event{Kind: KindPaillierAdd, N: 1})
	}
	if err := tw.Flush(); err == nil {
		t.Fatal("Flush returned nil error after failed writes")
	}
	if tw.Err() == nil {
		t.Fatal("Err returned nil after failed writes")
	}
	tw.Emit(Event{Kind: KindPaillierAdd, N: 1}) // must be a no-op, not a panic
}

// TestTee checks nil-skipping and fan-out.
func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no sinks should be nil (keeps the zero-cost path)")
	}
	a := &Collector{}
	if got := Tee(nil, a); got != Sink(a) {
		t.Errorf("Tee(nil, a) = %T, want the sink itself", got)
	}
	b := &Collector{}
	Tee(a, nil, b).Emit(Event{Kind: KindEpochEnd})
	if a.Snapshot().Epochs != 1 || b.Snapshot().Epochs != 1 {
		t.Error("Tee did not fan out to both sinks")
	}
}

// TestKindString pins the wire names; renaming one breaks old traces.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindEpochStart: "epoch_start", KindEpochEnd: "epoch_end",
		KindLocalUpdate: "local_update", KindAggregate: "aggregate",
		KindEstimatorRound: "estimator_round",
		KindPaillierEnc:    "paillier_enc", KindPaillierDec: "paillier_dec",
		KindPaillierAdd: "paillier_add", KindPaillierMulPlain: "paillier_mul_plain",
		KindPoolTask: "pool_task",
		KindDropout:  "dropout", KindStraggler: "straggler", KindRetry: "retry",
		KindCrash: "crash", KindCheckpoint: "checkpoint", KindResume: "resume",
		KindNetRoundStart: "net_round_start", KindNetRoundEnd: "net_round_end",
		KindNetRequest: "net_request", KindNetTimeout: "net_timeout",
		KindAttackInjected: "attack_injected", KindUpdateRejected: "update_rejected",
		KindUpdateClipped: "update_clipped", KindQuarantine: "quarantine",
		KindSample:     "sample",
		KindNetBytesRx: "net_bytes_rx", KindNetBytesTx: "net_bytes_tx",
		KindCodecV1Frame: "codec_v1_frame", KindCodecV2Frame: "codec_v2_frame",
		KindWALAppend: "wal_append", KindRecover: "recover",
		KindRejoin: "rejoin", KindEdgeFailover: "edge_failover",
		KindAsyncCommit: "async_commit", KindStaleFold: "stale_fold",
		KindStaleReject: "stale_reject",
	}
	got := map[Kind]string{}
	for k := Kind(0); k < numKinds; k++ {
		got[k] = k.String()
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kind names = %v, want %v", got, want)
	}
	if Kind(250).String() != "unknown" {
		t.Error("out-of-range Kind should stringify as unknown")
	}
}

// BenchmarkEmitNilSink measures the off-cost of an instrumentation point.
func BenchmarkEmitNilSink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := Start(nil)
		Emit(nil, Event{Kind: KindLocalUpdate, T: i, Dur: Since(nil, t0)})
	}
}

// BenchmarkEmitCollector is the on-cost reference point.
func BenchmarkEmitCollector(b *testing.B) {
	c := &Collector{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(c, Event{Kind: KindLocalUpdate, T: i})
	}
}
