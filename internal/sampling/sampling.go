// Package sampling implements seeded, deterministic per-round client
// sampling — the first layer of the million-participant path. Each epoch a
// cohort of Size participants is drawn from the run's population (uniformly,
// or weighted without replacement via Efraimidis–Spirakis keys) and only the
// cohort trains that round; everyone else sits it out with the same
// Epoch.Reported semantics as an injected dropout, scoring zero φ for the
// epoch per Lemma 3 additivity.
//
// Every selection is a pure function of (seed, epoch, participant): each
// candidate's key is hashed through the shared faults.Uniform splitmix64
// finalizer and the Size smallest keys win. Decisions are therefore
// independent of call order, of worker count, and of where a crashed run
// resumed — a resumed run replays the identical cohort sequence — and they
// compose with the fault injector (which hashes disjoint domains off the
// same primitive), so sampled+faulty runs stay bit-identical across reruns.
//
// Selection runs in O(population·log Size) time and O(Size) extra memory (a
// bounded max-heap of the current winners), so the sampler itself never
// materializes population-scale scratch state.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"digfl/internal/faults"
)

// Domain is the faults.Uniform hash domain the sampler draws its keys from,
// registered as faults.DomainSampling so every schedule sharing a seed stays
// independent (the faults.Domains collision guard enforces uniqueness).
const Domain = faults.DomainSampling

// Config parameterizes a Sampler.
type Config struct {
	// Seed determines every cohort; same seed, same cohort sequence.
	Seed int64
	// Size is the per-epoch cohort size. A Size of zero or one at least the
	// population selects everyone — the sampler is then a pass-through and
	// the run stays bit-identical to an unsampled one.
	Size int
	// Weights optionally biases selection, indexed by global participant
	// index: participant i wins with probability proportional to Weights[i]
	// (Efraimidis–Spirakis weighted sampling without replacement). Nil means
	// uniform. A zero weight makes a participant effectively unselectable
	// while any positively weighted candidate remains.
	Weights []float64
}

func (c Config) validate() error {
	if c.Size < 0 {
		return fmt.Errorf("sampling: negative cohort Size %d", c.Size)
	}
	for i, w := range c.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("sampling: weight[%d] = %v outside [0,∞)", i, w)
		}
	}
	return nil
}

// Sampler draws deterministic per-epoch cohorts. All methods are safe on a
// nil receiver (no sampling) and for concurrent use: the sampler holds no
// mutable state.
type Sampler struct {
	cfg Config
}

// New validates the configuration and builds a sampler.
func New(cfg Config) (*Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Sampler{cfg: cfg}, nil
}

// MustNew is New panicking on invalid configuration, for tests and examples
// with literal configs.
func MustNew(cfg Config) *Sampler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the validated configuration (zero Config for nil).
func (s *Sampler) Config() Config {
	if s == nil {
		return Config{}
	}
	return s.cfg
}

// Size returns the configured cohort size (0 for nil: select everyone).
func (s *Sampler) Size() int {
	if s == nil {
		return 0
	}
	return s.cfg.Size
}

// key maps (seed, epoch, participant) to the participant's selection key for
// the epoch; the Size smallest keys win. Uniform sampling uses the raw
// variate; weighted sampling uses the Efraimidis–Spirakis exponential form
// −ln(1−u)/w, an Exp(w) variate, whose k smallest order statistics realize
// weighted sampling without replacement. A zero weight maps to +Inf — never
// selected while a positively weighted candidate remains.
func (s *Sampler) key(epoch, part int) float64 {
	u := faults.Uniform(s.cfg.Seed, Domain, uint64(epoch), uint64(part), 0)
	if s.cfg.Weights == nil {
		return u
	}
	var w float64
	if part < len(s.cfg.Weights) {
		w = s.cfg.Weights[part]
	}
	if w == 0 {
		return math.Inf(1)
	}
	return -math.Log1p(-u) / w
}

// cohortHeap is a bounded max-heap over (key, participant, position)
// triples: the root is the worst of the current winners, evicted whenever a
// better candidate arrives. Ties break toward the smaller participant index
// so selection is a total order even on (astronomically unlikely) equal
// keys. Positions are carried so the winners can be restored to population
// order without any population-sized scratch state.
type cohortHeap struct {
	keys  []float64
	parts []int
	pos   []int
}

func (h *cohortHeap) less(a, b int) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return h.parts[a] < h.parts[b]
}

func (h *cohortHeap) swap(a, b int) {
	h.keys[a], h.keys[b] = h.keys[b], h.keys[a]
	h.parts[a], h.parts[b] = h.parts[b], h.parts[a]
	h.pos[a], h.pos[b] = h.pos[b], h.pos[a]
}

// siftDown restores the max-heap property from the root.
func (h *cohortHeap) siftDown() {
	i, n := 0, len(h.keys)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.less(big, l) {
			big = l
		}
		if r < n && h.less(big, r) {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}

// siftUp restores the max-heap property from the last element.
func (h *cohortHeap) siftUp() {
	for i := len(h.keys) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(p, i) {
			return
		}
		h.swap(p, i)
		i = p
	}
}

// Cohort returns epoch's sampled cohort as a subsequence of population,
// preserving population order — the fixed reduction order downstream
// aggregation depends on. A nil sampler, a Size of zero, or a Size at least
// the population returns the population slice itself (no allocation), so
// pass-through configurations stay bit-identical to unsampled runs.
func (s *Sampler) Cohort(epoch int, population []int) []int {
	if s == nil || s.cfg.Size == 0 || s.cfg.Size >= len(population) {
		return population
	}
	k := s.cfg.Size
	h := &cohortHeap{
		keys:  make([]float64, 0, k),
		parts: make([]int, 0, k),
		pos:   make([]int, 0, k),
	}
	for p, i := range population {
		key := s.key(epoch, i)
		if len(h.keys) < k {
			h.keys = append(h.keys, key)
			h.parts = append(h.parts, i)
			h.pos = append(h.pos, p)
			h.siftUp()
			continue
		}
		if key > h.keys[0] || (key == h.keys[0] && i > h.parts[0]) {
			continue
		}
		h.keys[0], h.parts[0], h.pos[0] = key, i, p
		h.siftDown()
	}
	// The heap yields winners in heap order; restore population order (the
	// fixed reduction order) by the recorded positions.
	cohort := append([]int(nil), h.parts...)
	order := append([]int(nil), h.pos...)
	sort.Sort(&byPos{pos: order, parts: cohort})
	return cohort
}

// byPos sorts a cohort by its recorded population positions.
type byPos struct {
	pos   []int
	parts []int
}

func (b *byPos) Len() int           { return len(b.pos) }
func (b *byPos) Less(i, j int) bool { return b.pos[i] < b.pos[j] }
func (b *byPos) Swap(i, j int) {
	b.pos[i], b.pos[j] = b.pos[j], b.pos[i]
	b.parts[i], b.parts[j] = b.parts[j], b.parts[i]
}
