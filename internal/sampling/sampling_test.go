package sampling

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func population(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func TestCohortPassThrough(t *testing.T) {
	pop := population(10)
	var nilS *Sampler
	if got := nilS.Cohort(3, pop); !same(got, pop) {
		t.Fatalf("nil sampler returned %v, want the population itself", got)
	}
	for _, size := range []int{0, 10, 11} {
		s := MustNew(Config{Seed: 1, Size: size})
		if got := s.Cohort(3, pop); !same(got, pop) {
			t.Fatalf("Size=%d returned %v, want the population itself", size, got)
		}
	}
}

// same reports whether both slices share the same backing array and length
// (the no-allocation pass-through contract).
func same(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func TestCohortDeterministicAndOrdered(t *testing.T) {
	pop := population(200)
	for _, seed := range []int64{1, 7, 42} {
		s := MustNew(Config{Seed: seed, Size: 16})
		for epoch := 1; epoch <= 5; epoch++ {
			a := s.Cohort(epoch, pop)
			b := s.Cohort(epoch, pop)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d epoch %d: repeated calls disagree: %v vs %v", seed, epoch, a, b)
			}
			if len(a) != 16 {
				t.Fatalf("seed %d epoch %d: cohort size %d, want 16", seed, epoch, len(a))
			}
			if !sort.IntsAreSorted(a) {
				t.Fatalf("seed %d epoch %d: cohort %v not in population order", seed, epoch, a)
			}
			seen := map[int]bool{}
			for _, i := range a {
				if i < 0 || i >= 200 || seen[i] {
					t.Fatalf("seed %d epoch %d: invalid cohort member %d in %v", seed, epoch, i, a)
				}
				seen[i] = true
			}
		}
		// Different epochs must draw different cohorts (same seed).
		if reflect.DeepEqual(s.Cohort(1, pop), s.Cohort(2, pop)) {
			t.Fatalf("seed %d: epochs 1 and 2 drew the identical 16-of-200 cohort", seed)
		}
	}
	// Different seeds must draw different cohorts (same epoch).
	a := MustNew(Config{Seed: 1, Size: 16}).Cohort(1, pop)
	b := MustNew(Config{Seed: 2, Size: 16}).Cohort(1, pop)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("seeds 1 and 2 drew the identical cohort %v", a)
	}
}

// TestCohortKeysArePerParticipant: each participant's selection key depends
// only on (seed, epoch, participant), so restricting the population to a
// coalition subset just re-ranks the same keys — any subset member that beat
// another subset member in the full competition still beats it in the
// restricted one. This is what makes cohorts of a coalition run
// well-defined and resume-independent.
func TestCohortKeysArePerParticipant(t *testing.T) {
	pop := population(100)
	s := MustNew(Config{Seed: 9, Size: 10})
	full := s.Cohort(4, pop)
	sub := pop[:50]
	got := s.Cohort(4, sub)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("restricted cohort %v not ordered", got)
	}
	for _, i := range got {
		if i >= 50 {
			t.Fatalf("restricted cohort %v contains non-member %d", got, i)
		}
	}
	// Every full-competition winner inside the subset must still win there.
	inGot := map[int]bool{}
	for _, i := range got {
		inGot[i] = true
	}
	for _, i := range full {
		if i < 50 && !inGot[i] {
			t.Fatalf("participant %d won the full draw but lost the restricted one (%v vs %v)", i, full, got)
		}
	}
}

func TestWeightedCohortBias(t *testing.T) {
	const n, size, epochs = 40, 8, 400
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	// Participant 0 is 20x more likely; participant 1 is unselectable.
	w[0], w[1] = 20, 0
	s := MustNew(Config{Seed: 5, Size: size, Weights: w})
	pop := population(n)
	hits := make([]int, n)
	for epoch := 1; epoch <= epochs; epoch++ {
		for _, i := range s.Cohort(epoch, pop) {
			hits[i]++
		}
	}
	if hits[1] != 0 {
		t.Fatalf("zero-weight participant selected %d times", hits[1])
	}
	if hits[0] < epochs*9/10 {
		t.Fatalf("heavy participant selected only %d/%d epochs", hits[0], epochs)
	}
	var rest int
	for i := 2; i < n; i++ {
		rest += hits[i]
	}
	mean := float64(rest) / float64(n-2)
	if float64(hits[0]) < 2*mean {
		t.Fatalf("heavy participant (%d hits) not clearly above uniform mean %.1f", hits[0], mean)
	}
}

func TestUniformCoverage(t *testing.T) {
	const n, size, epochs = 50, 5, 1000
	s := MustNew(Config{Seed: 11, Size: size})
	pop := population(n)
	hits := make([]int, n)
	for epoch := 1; epoch <= epochs; epoch++ {
		for _, i := range s.Cohort(epoch, pop) {
			hits[i]++
		}
	}
	want := float64(size*epochs) / float64(n) // 100 expected
	for i, h := range hits {
		if math.Abs(float64(h)-want) > want*0.5 {
			t.Fatalf("participant %d selected %d times, expected ≈%.0f (uniformity broken)", i, h, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Size: -1}); err == nil {
		t.Fatal("negative Size accepted")
	}
	if _, err := New(Config{Weights: []float64{1, -0.5}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := New(Config{Weights: []float64{math.NaN()}}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := New(Config{Size: 3, Weights: []float64{1, 2}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestCohortBoundedScratch guards the O(Size) selection memory contract on a
// large population: the per-call allocation must scale with the cohort, not
// the population.
func TestCohortBoundedScratch(t *testing.T) {
	pop := population(100_000)
	s := MustNew(Config{Seed: 3, Size: 64})
	allocs := testing.AllocsPerRun(3, func() {
		_ = s.Cohort(1, pop)
	})
	// Heap slices + result + sort scaffolding: a handful of allocations,
	// none proportional to the population.
	if allocs > 20 {
		t.Fatalf("Cohort performed %v allocations on a 100k population; want O(1) slice headers", allocs)
	}
}
