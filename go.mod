module digfl

go 1.22
