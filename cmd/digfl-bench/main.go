// Command digfl-bench regenerates the tables and figures of the DIG-FL
// paper's evaluation section on the synthetic simulator.
//
// Usage:
//
//	digfl-bench -exp all            # every table and figure
//	digfl-bench -exp fig3 -scale 1  # one experiment at full simulator scale
//	digfl-bench -exp fig6 -trace t.jsonl  # also record an observability trace
//	digfl-bench -exp faults -faults dropout=0.4,crash=8  # fault-tolerance check
//	digfl-bench -exp net -json out.json   # networked-runtime check + timings
//	digfl-bench -exp adversarial -attacks kind=sign_flip,frac=0.3  # defense check
//	digfl-bench -list               # list experiment ids
//
// With -trace, every training run and estimator pass streams typed events
// (epochs, local updates, aggregations, Paillier operations) to the named
// JSONL file, and a counter snapshot is printed after each experiment.
//
// With -json, a machine-readable summary is written after the run: one
// record per experiment with wall time, epoch count, and the p50/p99
// per-round latency (epoch durations, plus closed networked rounds when
// the experiment runs over the wire).
//
// Experiment ids map one-to-one to the paper's artifacts; fig2/table2,
// fig4/table4 and fig5/table5 are aliases for the runners that produce both.
// The extra "faults" id runs the fault-tolerance lifecycle (injected
// dropout/straggler/crash with checkpoint+resume, plus secure-round
// retries) and reports whether resume bit-identity, schedule determinism,
// and retry transparency held; the extra "net" id runs the networked
// coordinator/participant runtime over a loopback HTTP listener and checks
// it reproduces the in-process trainer bit for bit; the extra "adversarial"
// id attacks a federation per the -attacks spec and reports how the defense
// stack (update screening + contribution-guided quarantine) held up against
// the undefended run. None is part of the paper's evaluation, so -exp all
// includes none of them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"digfl/internal/experiments"
	"digfl/internal/obs"
)

type runner struct {
	ids  []string
	desc string
	run  func(o experiments.Opts) []result
}

// result pairs the human rendering with the CSV tables.
type result struct {
	render func(w *os.File)
	tables map[string][][]string
}

func runners() []runner {
	return []runner{
		{
			ids:  []string{"fig2", "table2"},
			desc: "second-term ablation: per-epoch phi vs phi-hat, 14 datasets",
			run: func(o experiments.Opts) []result {
				r := experiments.SecondTerm(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig3"},
			desc: "HFL: DIG-FL vs actual Shapley (PCC + cost)",
			run: func(o experiments.Opts) []result {
				r := experiments.HFLvsActual(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"table3"},
			desc: "VFL: DIG-FL vs actual Shapley on 10 tabular datasets",
			run: func(o experiments.Opts) []result {
				r := experiments.VFLvsActual(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig4", "table4"},
			desc: "HFL comparison: DIG-FL vs TMC / GT / MR / IM",
			run: func(o experiments.Opts) []result {
				r := experiments.HFLComparison(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig5", "table5"},
			desc: "VFL comparison: DIG-FL vs TMC / GT",
			run: func(o experiments.Opts) []result {
				r := experiments.VFLComparison(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig6"},
			desc: "per-epoch estimated vs actual Shapley (HFL)",
			run: func(o experiments.Opts) []result {
				r := experiments.PerEpoch(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig7"},
			desc: "reweight mechanism: accuracy vs m and convergence curves",
			run: func(o experiments.Opts) []result {
				a := experiments.Reweight("CIFAR10", experiments.NonIID, o)
				b := experiments.Reweight("MOTOR", experiments.Mislabeled, o)
				return []result{
					{render: func(w *os.File) { a.Render(w) }, tables: a.Tables()},
					{render: func(w *os.File) { b.Render(w) }, tables: b.Tables()},
				}
			},
		},
	}
}

// faultsRunner builds the fault-tolerance runner from a -faults spec. It is
// not part of runners(): -exp all reproduces the paper's artifacts only, so
// adding the robustness check never perturbs existing output.
func faultsRunner(spec experiments.FaultSpec) runner {
	return runner{
		ids:  []string{"faults"},
		desc: "fault tolerance: dropout/straggler/crash+resume, secure retry (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.FaultTolerance(spec, o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// netRunner exercises the networked coordinator/participant runtime over a
// loopback HTTP listener. Like "faults", it is a robustness check outside
// the paper's artifact set, so -exp all does not include it.
func netRunner() runner {
	return runner{
		ids:  []string{"net"},
		desc: "networked runtime: loopback HTTP run vs in-process trainer (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Net(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// adversarialRunner builds the adversarial-robustness runner from an
// -attacks spec. Like "faults" and "net", it is outside the paper's
// artifact set, so -exp all does not include it.
func adversarialRunner(spec experiments.AdvSpec) runner {
	return runner{
		ids:  []string{"adversarial"},
		desc: "adversarial defense: attacks vs screening+quarantine (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Adversarial(spec, o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// benchRecord is one -json entry: machine-readable timing for an experiment.
type benchRecord struct {
	Exp    string  `json:"exp"`
	WallMS float64 `json:"wall_ms"`
	// Epochs counts the training epochs the experiment ran (across every
	// run it performed).
	Epochs int64 `json:"epochs"`
	// RoundP50MS/RoundP99MS summarize per-round latency: epoch durations
	// for in-process runs plus closed-round durations for networked ones.
	RoundP50MS float64 `json:"round_p50_ms"`
	RoundP99MS float64 `json:"round_p99_ms"`
	Rounds     int     `json:"rounds"`
}

// benchSink harvests the per-round latencies a benchRecord summarizes.
type benchSink struct {
	mu   sync.Mutex
	durs []time.Duration
	eps  int64
}

func (s *benchSink) Emit(e obs.Event) {
	switch e.Kind {
	case obs.KindEpochEnd:
		s.mu.Lock()
		s.eps++
		s.durs = append(s.durs, e.Dur)
		s.mu.Unlock()
	case obs.KindNetRoundEnd:
		s.mu.Lock()
		s.durs = append(s.durs, e.Dur)
		s.mu.Unlock()
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	seed := flag.Int64("seed", 42, "random seed")
	csvDir := flag.String("csv", "", "also write each table/figure's data as CSV into this directory")
	trace := flag.String("trace", "", "write an observability trace (JSONL) to this file and print counter snapshots")
	faultsSpec := flag.String("faults", "", "fault spec for -exp faults, comma-separated key=value (seed, dropout, straggler, delay, crash, secure, every, retries)")
	attacksSpec := flag.String("attacks", "", "attack spec for -exp adversarial, comma-separated key=value (seed, kind, frac, n, scale, noise, rate, flip, clip, patience)")
	jsonPath := flag.String("json", "", "write machine-readable results (wall time, epochs, round latency percentiles) as JSON to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	spec, err := experiments.ParseFaultSpec(*faultsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
		os.Exit(2)
	}
	advSpec, err := experiments.ParseAdvSpec(*attacksSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
		os.Exit(2)
	}
	rs := append(runners(), faultsRunner(spec), netRunner(), adversarialRunner(advSpec))
	if *list {
		for _, r := range rs {
			fmt.Printf("%-14s %s\n", join(r.ids), r.desc)
		}
		return
	}
	o := experiments.Opts{Scale: *scale, Seed: *seed}
	if o.Scale <= 0 || o.Scale > 1 {
		fmt.Fprintf(os.Stderr, "digfl-bench: -scale must be in (0,1], got %v\n", o.Scale)
		os.Exit(2)
	}

	// With -trace, every run feeds a JSONL trace writer plus an in-memory
	// collector whose snapshot is printed after each experiment.
	var collector *obs.Collector
	var tw *obs.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := tw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "digfl-bench: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "digfl-bench: trace: %v\n", err)
			}
		}()
		collector = &obs.Collector{}
		tw = obs.NewTraceWriter(f)
		o.Sink = obs.Tee(collector, tw)
	}

	var records []benchRecord
	emit := func(r runner) {
		oo := o
		var bs *benchSink
		if *jsonPath != "" {
			bs = &benchSink{}
			oo.Sink = obs.Tee(o.Sink, bs)
		}
		start := time.Now()
		for _, res := range r.run(oo) {
			res.render(os.Stdout)
			if *csvDir != "" {
				if err := writeTables(*csvDir, res.tables); err != nil {
					fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if bs != nil {
			lq := experiments.Quantiles(bs.durs, 0.50, 0.99)
			records = append(records, benchRecord{
				Exp:        r.ids[0],
				WallMS:     float64(time.Since(start)) / float64(time.Millisecond),
				Epochs:     bs.eps,
				RoundP50MS: float64(lq[0]) / float64(time.Millisecond),
				RoundP99MS: float64(lq[1]) / float64(time.Millisecond),
				Rounds:     len(bs.durs),
			})
		}
		if collector != nil {
			fmt.Printf("\n[obs] %s\n", collector.Snapshot())
		}
	}
	flush := func() {
		if *jsonPath == "" {
			return
		}
		data, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "digfl-bench: json: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, r := range rs {
			if contains(r.ids, "faults") || contains(r.ids, "net") || contains(r.ids, "adversarial") {
				continue // robustness checks are opt-in; 'all' stays the paper set
			}
			emit(r)
		}
		flush()
		return
	}
	for _, r := range rs {
		if contains(r.ids, *exp) {
			emit(r)
			flush()
			return
		}
	}
	var known []string
	for _, r := range rs {
		known = append(known, r.ids...)
	}
	sort.Strings(known)
	fmt.Fprintf(os.Stderr, "digfl-bench: unknown experiment %q (known: %v)\n", *exp, known)
	os.Exit(2)
}

// writeTables dumps each named table as <dir>/<stem>.csv.
func writeTables(dir string, tables map[string][][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for stem, rows := range tables {
		f, err := os.Create(filepath.Join(dir, stem+".csv"))
		if err != nil {
			return err
		}
		err = experiments.WriteCSV(f, rows)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func join(ids []string) string {
	s := ids[0]
	for _, id := range ids[1:] {
		s += "/" + id
	}
	return s
}

func contains(ids []string, want string) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}
