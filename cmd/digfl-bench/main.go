// Command digfl-bench regenerates the tables and figures of the DIG-FL
// paper's evaluation section on the synthetic simulator.
//
// Usage:
//
//	digfl-bench -exp all            # every table and figure
//	digfl-bench -exp fig3 -scale 1  # one experiment at full simulator scale
//	digfl-bench -exp fig6 -trace t.jsonl  # also record an observability trace
//	digfl-bench -exp faults -faults dropout=0.4,crash=8  # fault-tolerance check
//	digfl-bench -exp net -json out.json   # networked-runtime check + timings
//	digfl-bench -exp adversarial -attacks kind=sign_flip,frac=0.3  # defense check
//	digfl-bench -exp wire -json BENCH.json  # binary vs JSON wire benchmark
//	digfl-bench -exp load -load clients=2000,delay=20ms  # concurrent-client load test
//	digfl-bench -list               # list experiment ids
//
// With -trace, every training run and estimator pass streams typed events
// (epochs, local updates, aggregations, Paillier operations) to the named
// JSONL file, and a counter snapshot is printed after each experiment.
//
// With -json, a machine-readable summary is written after the run in the
// versioned digfl-bench schema (v2): one entry per experiment with wall
// time, epoch count, and the p50/p99 per-round latency (epoch durations,
// plus closed networked rounds when the experiment runs over the wire);
// the wire and load experiments add codec, bytes-on-wire, allocs-per-round,
// and concurrency fields. When the target file already exists (either a v2
// envelope or a v1 bare record array), this run's entries are APPENDED, so
// one file accumulates the perf trajectory across revisions.
//
// Experiment ids map one-to-one to the paper's artifacts; fig2/table2,
// fig4/table4 and fig5/table5 are aliases for the runners that produce both.
// The extra "faults" id runs the fault-tolerance lifecycle (injected
// dropout/straggler/crash with checkpoint+resume, plus secure-round
// retries) and reports whether resume bit-identity, schedule determinism,
// and retry transparency held; the extra "net" id runs the networked
// coordinator/participant runtime over a loopback HTTP listener and checks
// it reproduces the in-process trainer bit for bit; the extra "adversarial"
// id attacks a federation per the -attacks spec and reports how the defense
// stack (update screening + contribution-guided quarantine) held up against
// the undefended run; the extra "wire" id benchmarks the digfl-fednet/2
// binary codec against v1 JSON on a streamed sampled-cohort run (bytes on
// wire, allocs per round, bit-identity); the extra "load" id hammers a live
// coordinator with concurrent /v1/score readers and long-poll round
// watchers per the -load spec; the extra "engines" id replays one training
// log through every registered contribution engine (exact, TMC, GT, GTG,
// DPVS) and reports rank accuracy against exact Shapley next to
// utility-evaluation cost; the extra "volatility" id reports each engine's
// rank stability (Kendall tau spread) across sampling seeds and async
// quorum sizes; the extra "async" id races the synchronous drop-straggler
// policy against the asynchronous staleness-discounted fold on a
// class-disjoint federation and reports epochs-to-target at several sticky
// straggler rates. None is part of the paper's evaluation, so -exp all
// includes none of them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"digfl/internal/experiments"
	"digfl/internal/obs"
)

type runner struct {
	ids  []string
	desc string
	run  func(o experiments.Opts) []result
}

// result pairs the human rendering with the CSV tables; bench optionally
// carries experiment-specific machine-readable entries for -json output.
type result struct {
	render func(w *os.File)
	tables map[string][][]string
	bench  []experiments.BenchEntry
}

func runners() []runner {
	return []runner{
		{
			ids:  []string{"fig2", "table2"},
			desc: "second-term ablation: per-epoch phi vs phi-hat, 14 datasets",
			run: func(o experiments.Opts) []result {
				r := experiments.SecondTerm(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig3"},
			desc: "HFL: DIG-FL vs actual Shapley (PCC + cost)",
			run: func(o experiments.Opts) []result {
				r := experiments.HFLvsActual(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"table3"},
			desc: "VFL: DIG-FL vs actual Shapley on 10 tabular datasets",
			run: func(o experiments.Opts) []result {
				r := experiments.VFLvsActual(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig4", "table4"},
			desc: "HFL comparison: DIG-FL vs TMC / GT / MR / IM",
			run: func(o experiments.Opts) []result {
				r := experiments.HFLComparison(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig5", "table5"},
			desc: "VFL comparison: DIG-FL vs TMC / GT",
			run: func(o experiments.Opts) []result {
				r := experiments.VFLComparison(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig6"},
			desc: "per-epoch estimated vs actual Shapley (HFL)",
			run: func(o experiments.Opts) []result {
				r := experiments.PerEpoch(o)
				return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
			},
		},
		{
			ids:  []string{"fig7"},
			desc: "reweight mechanism: accuracy vs m and convergence curves",
			run: func(o experiments.Opts) []result {
				a := experiments.Reweight("CIFAR10", experiments.NonIID, o)
				b := experiments.Reweight("MOTOR", experiments.Mislabeled, o)
				return []result{
					{render: func(w *os.File) { a.Render(w) }, tables: a.Tables()},
					{render: func(w *os.File) { b.Render(w) }, tables: b.Tables()},
				}
			},
		},
	}
}

// faultsRunner builds the fault-tolerance runner from a -faults spec. It is
// not part of runners(): -exp all reproduces the paper's artifacts only, so
// adding the robustness check never perturbs existing output.
func faultsRunner(spec experiments.FaultSpec) runner {
	return runner{
		ids:  []string{"faults"},
		desc: "fault tolerance: dropout/straggler/crash+resume, secure retry (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.FaultTolerance(spec, o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// netRunner exercises the networked coordinator/participant runtime over a
// loopback HTTP listener. Like "faults", it is a robustness check outside
// the paper's artifact set, so -exp all does not include it.
func netRunner() runner {
	return runner{
		ids:  []string{"net"},
		desc: "networked runtime: loopback HTTP run vs in-process trainer (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Net(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// wireRunner benchmarks the digfl-fednet/2 binary wire against v1 JSON on
// the streamed sampled-cohort run. Outside the paper's artifact set, so
// -exp all does not include it.
func wireRunner() runner {
	return runner{
		ids:  []string{"wire"},
		desc: "wire codecs: binary vs JSON bytes/allocs + bit-identity (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Wire(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables(), bench: r.Bench()}}
		},
	}
}

// loadRunner builds the concurrent-client load test from a -load spec.
// Outside the paper's artifact set, so -exp all does not include it.
func loadRunner(spec experiments.LoadSpec) runner {
	return runner{
		ids:  []string{"load"},
		desc: "load test: concurrent score readers + round watchers (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Load(spec, o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables(), bench: r.Bench()}}
		},
	}
}

// chaosRunner runs the deterministic chaos harness: seeded coordinator
// kills with WAL recovery plus an edge death with root failover, gated on
// bit-identity against uninterrupted references. Outside the paper's
// artifact set, so -exp all does not include it.
func chaosRunner() runner {
	return runner{
		ids:  []string{"chaos"},
		desc: "chaos harness: coordinator kills + WAL recovery, edge failover (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Chaos(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables(), bench: r.Bench()}}
		},
	}
}

// enginesRunner replays one training log through every registered
// contribution engine and reports rank accuracy vs exact Shapley next to
// utility-evaluation cost. Outside the paper's artifact set, so -exp all
// does not include it.
func enginesRunner() runner {
	return runner{
		ids:  []string{"engines"},
		desc: "contribution engines: rank accuracy vs utility-eval cost (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.EngineMatrix(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables(), bench: r.Bench()}}
		},
	}
}

// asyncRunner runs the buffered-federation study: sync-drop vs
// staleness-discounted async fold at several sticky-straggler rates, gated
// on fresh-path bit-identity, determinism, and an epochs-to-target
// advantage. Outside the paper's artifact set, so -exp all does not
// include it.
func asyncRunner() runner {
	return runner{
		ids:  []string{"async"},
		desc: "async federation: sync-drop vs staleness-discounted fold (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Async(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables(), bench: r.Bench()}}
		},
	}
}

// volatilityRunner reports each engine's rank stability across sampling
// seeds. Outside the paper's artifact set, so -exp all does not include it.
func volatilityRunner() runner {
	return runner{
		ids:  []string{"volatility"},
		desc: "contribution engines: rank stability across sampling seeds (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Volatility(o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// adversarialRunner builds the adversarial-robustness runner from an
// -attacks spec. Like "faults" and "net", it is outside the paper's
// artifact set, so -exp all does not include it.
func adversarialRunner(spec experiments.AdvSpec) runner {
	return runner{
		ids:  []string{"adversarial"},
		desc: "adversarial defense: attacks vs screening+quarantine (not in 'all')",
		run: func(o experiments.Opts) []result {
			r := experiments.Adversarial(spec, o)
			return []result{{render: func(w *os.File) { r.Render(w) }, tables: r.Tables()}}
		},
	}
}

// benchSink harvests the per-round latencies a generic bench entry
// summarizes (the schema lives in experiments.BenchEntry).
type benchSink struct {
	mu   sync.Mutex
	durs []time.Duration
	eps  int64
}

func (s *benchSink) Emit(e obs.Event) {
	switch e.Kind {
	case obs.KindEpochEnd:
		s.mu.Lock()
		s.eps++
		s.durs = append(s.durs, e.Dur)
		s.mu.Unlock()
	case obs.KindNetRoundEnd:
		s.mu.Lock()
		s.durs = append(s.durs, e.Dur)
		s.mu.Unlock()
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	seed := flag.Int64("seed", 42, "random seed")
	csvDir := flag.String("csv", "", "also write each table/figure's data as CSV into this directory")
	trace := flag.String("trace", "", "write an observability trace (JSONL) to this file and print counter snapshots")
	faultsSpec := flag.String("faults", "", "fault spec for -exp faults, comma-separated key=value (seed, dropout, straggler, delay, crash, secure, every, retries)")
	attacksSpec := flag.String("attacks", "", "attack spec for -exp adversarial, comma-separated key=value (seed, kind, frac, n, scale, noise, rate, flip, clip, patience)")
	loadSpec := flag.String("load", "", "load spec for -exp load, comma-separated key=value (clients, delay)")
	jsonPath := flag.String("json", "", "append machine-readable results (digfl-bench schema v2: wall time, round latency percentiles, wire/load metrics) to this JSON file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	spec, err := experiments.ParseFaultSpec(*faultsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
		os.Exit(2)
	}
	advSpec, err := experiments.ParseAdvSpec(*attacksSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
		os.Exit(2)
	}
	lspec, err := experiments.ParseLoadSpec(*loadSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
		os.Exit(2)
	}
	rs := append(runners(), faultsRunner(spec), netRunner(), adversarialRunner(advSpec),
		wireRunner(), loadRunner(lspec), chaosRunner(), enginesRunner(), volatilityRunner(),
		asyncRunner())
	if *list {
		for _, r := range rs {
			fmt.Printf("%-14s %s\n", join(r.ids), r.desc)
		}
		return
	}
	o := experiments.Opts{Scale: *scale, Seed: *seed}
	if o.Scale <= 0 || o.Scale > 1 {
		fmt.Fprintf(os.Stderr, "digfl-bench: -scale must be in (0,1], got %v\n", o.Scale)
		os.Exit(2)
	}

	// With -trace, every run feeds a JSONL trace writer plus an in-memory
	// collector whose snapshot is printed after each experiment.
	var collector *obs.Collector
	var tw *obs.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := tw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "digfl-bench: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "digfl-bench: trace: %v\n", err)
			}
		}()
		collector = &obs.Collector{}
		tw = obs.NewTraceWriter(f)
		o.Sink = obs.Tee(collector, tw)
	}

	var records []experiments.BenchEntry
	emit := func(r runner) {
		oo := o
		var bs *benchSink
		if *jsonPath != "" {
			bs = &benchSink{}
			oo.Sink = obs.Tee(o.Sink, bs)
		}
		start := time.Now()
		var extra []experiments.BenchEntry
		for _, res := range r.run(oo) {
			res.render(os.Stdout)
			extra = append(extra, res.bench...)
			if *csvDir != "" {
				if err := writeTables(*csvDir, res.tables); err != nil {
					fmt.Fprintf(os.Stderr, "digfl-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if bs != nil {
			lq := experiments.Quantiles(bs.durs, 0.50, 0.99)
			records = append(records, experiments.BenchEntry{
				Exp:        r.ids[0],
				WallMS:     float64(time.Since(start)) / float64(time.Millisecond),
				Epochs:     bs.eps,
				RoundP50MS: float64(lq[0]) / float64(time.Millisecond),
				RoundP99MS: float64(lq[1]) / float64(time.Millisecond),
				Rounds:     len(bs.durs),
			})
			records = append(records, extra...)
		}
		if collector != nil {
			fmt.Printf("\n[obs] %s\n", collector.Snapshot())
		}
	}
	// flush appends this run's entries to the target file: existing v1 or
	// v2 bench files are extended, so one file holds the perf trajectory.
	flush := func() {
		if *jsonPath == "" {
			return
		}
		prev, err := os.ReadFile(*jsonPath)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "digfl-bench: json: %v\n", err)
			os.Exit(1)
		}
		bf, err := experiments.ReadBench(prev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "digfl-bench: json: %v\n", err)
			os.Exit(1)
		}
		bf.Append(records...)
		data, err := bf.Marshal()
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "digfl-bench: json: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, r := range rs {
			if contains(r.ids, "faults") || contains(r.ids, "net") || contains(r.ids, "adversarial") ||
				contains(r.ids, "wire") || contains(r.ids, "load") || contains(r.ids, "chaos") ||
				contains(r.ids, "engines") || contains(r.ids, "volatility") || contains(r.ids, "async") {
				continue // robustness checks are opt-in; 'all' stays the paper set
			}
			emit(r)
		}
		flush()
		return
	}
	for _, r := range rs {
		if contains(r.ids, *exp) {
			emit(r)
			flush()
			return
		}
	}
	var known []string
	for _, r := range rs {
		known = append(known, r.ids...)
	}
	sort.Strings(known)
	fmt.Fprintf(os.Stderr, "digfl-bench: unknown experiment %q (known: %v)\n", *exp, known)
	os.Exit(2)
}

// writeTables dumps each named table as <dir>/<stem>.csv.
func writeTables(dir string, tables map[string][][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for stem, rows := range tables {
		f, err := os.Create(filepath.Join(dir, stem+".csv"))
		if err != nil {
			return err
		}
		err = experiments.WriteCSV(f, rows)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func join(ids []string) string {
	s := ids[0]
	for _, id := range ids[1:] {
		s += "/" + id
	}
	return s
}

func contains(ids []string, want string) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}
