// Package digfl is an open-source Go implementation of DIG-FL — "Efficient
// Participant Contribution Evaluation for Horizontal and Vertical Federated
// Learning" (Wang et al., ICDE 2022).
//
// DIG-FL estimates every participant's Shapley value from the training log
// alone — no model retraining, no access to local data — for both horizontal
// (HFL) and vertical (VFL) federated learning, and uses the per-epoch
// contributions to reweight participants during training.
//
// This root package is a facade re-exporting the user-facing API; the
// implementation lives in the internal packages:
//
//	internal/core        DIG-FL estimators and the reweight mechanism
//	internal/hfl         horizontal FL substrate (FedSGD / FedAvg-style)
//	internal/vfl         vertical FL substrate (plaintext + Paillier protocol)
//	internal/fednet      networked coordinator/participant runtime (HTTP)
//	internal/nn          models with hand-derived gradients and HVPs
//	internal/dataset     synthetic data generators, partitioners, corruptions
//	internal/shapley     exact Shapley, TMC-Shapley, GT-Shapley
//	internal/baselines   MR, OR and IM comparison methods
//	internal/paillier    additively homomorphic encryption
//	internal/metrics     PCC, cost accounting
//	internal/experiments one runner per paper table/figure
//
// A minimal HFL session:
//
//	tr := &digfl.HFLTrainer{
//		Model: digfl.NewSoftmaxRegression(dim, classes),
//		Parts: parts, Val: val,
//		Cfg:   digfl.HFLConfig{Epochs: 30, LR: 0.1, KeepLog: true},
//	}
//	res, err := tr.RunContext(ctx)
//	if err != nil {
//		log.Fatal(err)
//	}
//	attr := digfl.EstimateHFL(res.Log, len(parts), digfl.ResourceSaving, nil)
//	fmt.Println(attr.Totals) // estimated Shapley value per participant
//
// # Runtime: parallelism and observability
//
// Every training, estimation and secure-protocol entry point accepts a
// shared Runtime value carrying the two cross-cutting knobs:
//
//	rt := digfl.Runtime{Workers: 4, Sink: collector}
//	tr.Cfg = digfl.HFLConfig{Epochs: 30, LR: 0.1, KeepLog: true, Runtime: rt}
//
// Runtime.Workers bounds the worker pool of the component's concurrent hot
// path (local updates for the HFL trainer, per-participant HVPs for the
// interactive HFL estimator, per-block replay for the VFL estimator,
// per-element Paillier operations for the secure protocol): 1 forces the
// serial path, > 1 sets the pool size, negative selects GOMAXPROCS, and 0
// takes the component's default — serial everywhere except the secure
// protocol, whose Paillier arithmetic is compute-bound and defaults to
// GOMAXPROCS. Every component resolves its pool size through the single
// Runtime.Resolve rule.
//
// Migration note: the pre-Runtime knobs — HFLConfig.Parallel and
// HFLConfig.Workers (the historical bool+cap pair), HFLEstimator.Workers,
// and SecureConfig.Workers — have been removed after one deprecation
// cycle. Replace any use with Runtime.Workers: Parallel:true maps to
// Workers:-1 (GOMAXPROCS), Parallel:true+Workers:k to Workers:k, and a
// zero-valued SecureConfig keeps its GOMAXPROCS default with no change.
//
// Pool outputs are bit-identical to the serial path, so parallelism is
// purely a wall-clock knob; parallel estimator paths require a
// concurrency-safe HVPProvider (LocalHVP and TrainHVP both are — each
// in-flight call works on its own pooled model clone). ExactShapley's
// parallel twin (shapley.ExactParallel) evaluates the 2^n coalitions on
// the same pool.
//
// Runtime.Sink attaches an observability sink receiving typed Events
// (epoch boundaries, local updates, aggregations, estimator rounds,
// Paillier operation batches, pool dispatches). A nil sink is a
// branch-predicted no-op — zero allocations, no clock reads — and no sink
// ever perturbs numerical results. Two implementations ship: Collector
// (atomic in-memory counters with a Snapshot) and TraceWriter (JSONL
// stream readable back via ReadTrace); Tee fans out to several.
//
// # Training-log persistence
//
// WriteHFLLog/WriteVFLLog emit format version 2, which encodes non-finite
// floats (NaN, ±Inf — routine in diverged runs) as the string sentinels
// "NaN", "+Inf" and "-Inf"; version-1 files remain readable.
//
// # Fault tolerance
//
// The trainers survive the failures a real federation exhibits. A seeded,
// deterministic FaultInjector (NewFaultInjector) drives per-epoch dropout,
// straggler delay, crash-at-epoch-k, and transient secure-round failures;
// every decision is a pure function of (seed, epoch, participant), so the
// same seed reproduces the same fault schedule regardless of worker count
// or resume point. Epochs where someone dropped out carry a Reported
// survivor list; aggregation renormalizes over the survivors and the
// estimators score missing participants zero for the epoch (Lemma 3
// additivity). The Paillier protocol retries failed rounds with capped
// exponential backoff (SecureConfig.MaxRetries). Configs with
// CheckpointEvery hand periodic HFLTrainerCheckpoint/VFLTrainerCheckpoint
// snapshots to a callback — persist them with WriteHFLCheckpoint together
// with the online estimator's State() — and after a crash (a *CrashError
// from RunE) the snapshot resumes training via Config.Resume with results
// bit-identical to an uninterrupted run. With no injector configured, or a
// configured injector that happens to fire nothing, outputs are
// bit-identical to a build without fault tolerance at all.
//
// # Networked runtime
//
// The fednet layer runs the same training and estimation over a real HTTP
// boundary. A NetCoordinator owns the global model and validation set,
// serves the versioned wire protocol (join / round / update / aggregate /
// score), and drives ordinary HFL epochs through the trainer's RoundSource
// seam; a NetParticipant wraps one local dataset shard and polls for
// rounds. RunLoopback wires N participants to a coordinator over a
// loopback listener in one call:
//
//	coord := &digfl.NetCoordinator{N: 3, Model: model, Val: val,
//		Cfg: digfl.HFLConfig{Epochs: 30, LR: 0.1, KeepLog: true},
//		Estimator: digfl.NewHFLEstimator(3, model.NumParams(), digfl.ResourceSaving, nil)}
//	res, perrs, err := digfl.RunLoopback(ctx, coord, func(i int) *digfl.NetParticipant {
//		return &digfl.NetParticipant{Index: i, Model: model, Data: parts[i], Retries: 3}
//	})
//
// The determinism contract: a fault-free networked run reproduces the
// in-process trainer's model, loss curve, and contributions φ bit for bit
// (floats cross the wire exactly in both encodings; deltas are slotted by
// participant index, so aggregation never depends on arrival order). A
// participant missing the coordinator's RoundDeadline degrades that epoch
// to the survivors with the same Reported semantics as injected dropout,
// and transient request failures are retried with capped exponential
// backoff, invisibly to the result.
//
// Bulk payloads (round broadcasts, updates, edge partials) travel in one
// of two negotiated encodings: NetProtocol, the v1 JSON wire, or
// NetProtocolV2, a raw little-endian binary framing that cuts bytes on
// wire by >2x and, with the runtime's buffer pooling, makes a streamed
// round allocate near-zero transient memory. Clients offer v2 at join and
// the coordinator picks; either side pins itself to v1 with its LegacyJSON
// field, and ingest always accepts both encodings, so mixed fleets and
// rollbacks need no coordination. Both encodings carry float64 values bit
// exactly, so the determinism contract holds across any mix (DESIGN.md
// §11 specifies the frames and the negotiation).
//
// # Adversarial robustness
//
// The runtime defends contribution evaluation against Byzantine and
// free-riding participants, and uses contribution evaluation itself as a
// defense. Deterministic attack simulators (NewAdversary, wrapped around
// any round source via AdversarySource, or applied to shards via
// PoisonShards) model label flipping, sign flipping, scaled model
// poisoning, additive-noise free riding, and colluding cliques; every
// attack decision hashes (seed, round, participant), so attacked runs are
// exactly reproducible. Server-side, an UpdateScreen vets each round's
// updates before aggregation — wrong shapes and non-finite values are
// rejected, outlier L2 norms are clipped against a running median — and
// Byzantine-resilient aggregators (MedianAggregator, TrimmedMeanAggregator,
// KrumAggregator, MultiKrumAggregator, NormBoundAggregator) replace the
// mean wholesale. The contribution-guided Quarantine closes the loop: it
// reweights by rectified per-epoch φ (Eq. 17) and permanently zero-weights
// participants whose smoothed contribution stays non-positive, surfacing
// bans on the networked coordinator's /v1/score endpoint. The networked
// coordinator additionally rejects malformed updates at the wire with
// typed errors (WireError codes WireStaleRound, WireBadShape,
// WireNonFinite). With no adversary configured and defenses attached, every
// run is bit-identical to an undefended build — the defense stack costs
// nothing until it fires.
//
// Long-running sessions use the context-aware entry points RunContext /
// RunSubsetContext on both trainers: cancellation is observed at the next
// epoch boundary, returns the context's error, and never corrupts
// checkpoint state, so a canceled run resumes bit-identically via
// Config.Resume. Run and RunE remain thin wrappers over
// context.Background().
package digfl

import (
	"digfl/internal/adversary"
	"digfl/internal/baselines"
	"digfl/internal/core"
	"digfl/internal/dataset"
	"digfl/internal/faults"
	"digfl/internal/fednet"
	"digfl/internal/hfl"
	"digfl/internal/logio"
	"digfl/internal/metrics"
	"digfl/internal/nn"
	"digfl/internal/obs"
	"digfl/internal/robust"
	"digfl/internal/sampling"
	"digfl/internal/shapley"
	"digfl/internal/vfl"
)

// Runtime and observability (internal/obs).
type (
	// Runtime bundles the cross-cutting worker-pool and observability
	// options accepted by HFLConfig, VFLConfig, SecureConfig and both
	// estimators.
	Runtime = obs.Runtime
	// Sink receives observability events; implementations must be safe for
	// concurrent use.
	Sink = obs.Sink
	// Event is one observability record.
	Event = obs.Event
	// EventKind discriminates Event records.
	EventKind = obs.Kind
	// Snapshot is a point-in-time copy of a Collector's counters.
	Snapshot = obs.Snapshot
	// Collector is an in-memory aggregating Sink.
	Collector = obs.Collector
	// TraceWriter is a JSONL-streaming Sink.
	TraceWriter = obs.TraceWriter
)

// Event kinds.
const (
	// KindEpochStart opens a training epoch.
	KindEpochStart = obs.KindEpochStart
	// KindEpochEnd closes a training epoch (Value carries the loss).
	KindEpochEnd = obs.KindEpochEnd
	// KindLocalUpdate is one participant's local computation.
	KindLocalUpdate = obs.KindLocalUpdate
	// KindAggregate is one server-side aggregation.
	KindAggregate = obs.KindAggregate
	// KindEstimatorRound is one estimator epoch replay.
	KindEstimatorRound = obs.KindEstimatorRound
	// KindPaillierEnc counts a batch of Paillier encryptions.
	KindPaillierEnc = obs.KindPaillierEnc
	// KindPaillierDec counts a batch of Paillier decryptions.
	KindPaillierDec = obs.KindPaillierDec
	// KindPaillierAdd counts a batch of homomorphic additions.
	KindPaillierAdd = obs.KindPaillierAdd
	// KindPaillierMulPlain counts a batch of plaintext multiplications.
	KindPaillierMulPlain = obs.KindPaillierMulPlain
	// KindPoolTask is one worker-pool dispatch.
	KindPoolTask = obs.KindPoolTask
	// KindDropout marks a participant missing an epoch.
	KindDropout = obs.KindDropout
	// KindStraggler marks a delayed participant report.
	KindStraggler = obs.KindStraggler
	// KindRetry marks a failed secure-round attempt about to be retried.
	KindRetry = obs.KindRetry
	// KindCrash marks an injected trainer crash.
	KindCrash = obs.KindCrash
	// KindCheckpoint marks a periodic checkpoint capture.
	KindCheckpoint = obs.KindCheckpoint
	// KindResume marks a run resuming from a checkpoint.
	KindResume = obs.KindResume
	// KindNetRoundStart marks a networked round broadcast.
	KindNetRoundStart = obs.KindNetRoundStart
	// KindNetRoundEnd marks a networked round closing (N carries the
	// reporter count, Dur the round latency).
	KindNetRoundEnd = obs.KindNetRoundEnd
	// KindNetRequest counts wire-protocol requests.
	KindNetRequest = obs.KindNetRequest
	// KindNetTimeout marks a participant missing a round deadline.
	KindNetTimeout = obs.KindNetTimeout
	// KindAttackInjected marks a simulated adversary corrupting an update.
	KindAttackInjected = obs.KindAttackInjected
	// KindUpdateRejected marks the defense discarding an update.
	KindUpdateRejected = obs.KindUpdateRejected
	// KindUpdateClipped marks the screen clipping an outlier update norm.
	KindUpdateClipped = obs.KindUpdateClipped
	// KindQuarantine marks a participant being quarantined.
	KindQuarantine = obs.KindQuarantine
)

// Observability constructors and helpers.
var (
	// NewTraceWriter wraps an io.Writer into a JSONL trace Sink.
	NewTraceWriter = obs.NewTraceWriter
	// ReadTrace parses a JSONL trace back into events.
	ReadTrace = obs.ReadTrace
	// Tee fans events out to several sinks.
	Tee = obs.Tee
)

// Core DIG-FL types (internal/core).
type (
	// Mode selects the interactive (Algorithm 1) or resource-saving
	// (Algorithm 2) estimator variant.
	Mode = core.Mode
	// Attribution is a DIG-FL result: per-epoch contributions and the
	// aggregated Shapley estimate.
	Attribution = core.Attribution
	// HFLEstimator is the online horizontal estimator.
	HFLEstimator = core.HFLEstimator
	// VFLEstimator is the online vertical estimator.
	VFLEstimator = core.VFLEstimator
	// HFLReweighter plugs per-epoch contributions into HFL aggregation.
	HFLReweighter = core.HFLReweighter
	// VFLReweighter plugs per-epoch contributions into VFL block weighting.
	VFLReweighter = core.VFLReweighter
	// HVPProvider supplies per-participant Hessian-vector products.
	HVPProvider = core.HVPProvider
	// RoundInfo is the participant-visible broadcast used for local
	// per-sample attribution.
	RoundInfo = core.RoundInfo
)

// Estimator modes.
const (
	// ResourceSaving is Algorithm 2: first-order only, zero extra cost.
	ResourceSaving = core.ResourceSaving
	// Interactive is Algorithm 1: keeps the Hessian correction term.
	Interactive = core.Interactive
)

// Core constructors and functions.
var (
	// NewHFLEstimator creates an online horizontal estimator.
	NewHFLEstimator = core.NewHFLEstimator
	// NewVFLEstimator creates an online vertical estimator.
	NewVFLEstimator = core.NewVFLEstimator
	// EstimateHFL replays a retained HFL training log.
	EstimateHFL = core.EstimateHFL
	// EstimateHFLSubset replays a coalition (RunSubset) training log,
	// mapping each epoch's deltas back to global participant indices.
	EstimateHFLSubset = core.EstimateHFLSubset
	// EstimateVFL replays a retained VFL training log.
	EstimateVFL = core.EstimateVFL
	// LocalHVP builds an HVPProvider from a model and participant data.
	LocalHVP = core.LocalHVP
	// TrainHVP builds a full-model HVP for the interactive VFL estimator.
	TrainHVP = core.TrainHVP
	// ReweightWeights rectifies per-epoch contributions into aggregation
	// weights (Eq. 17).
	ReweightWeights = core.Weights
	// RankParticipants orders participant indices by descending contribution.
	RankParticipants = core.Rank
	// SelectTopK picks the k highest-contribution participants.
	SelectTopK = core.SelectTopK
	// PaymentShares converts totals into a fair reward split.
	PaymentShares = core.PaymentShares
	// SampleContributions decomposes a participant's contribution across
	// its individual samples (local model debugging).
	SampleContributions = core.SampleContributions
	// AccumulateSampleContributions sums sample contributions over a run.
	AccumulateSampleContributions = core.AccumulateSampleContributions
)

// Federated substrates.
type (
	// HFLTrainer runs horizontal FedSGD/FedAvg-style training.
	HFLTrainer = hfl.Trainer
	// HFLConfig holds horizontal training hyperparameters.
	HFLConfig = hfl.Config
	// HFLEpoch is one horizontal training-log record.
	HFLEpoch = hfl.Epoch
	// HFLResult is a horizontal run outcome.
	HFLResult = hfl.Result
	// VFLTrainer runs vertical training.
	VFLTrainer = vfl.Trainer
	// VFLConfig holds vertical training hyperparameters.
	VFLConfig = vfl.Config
	// VFLEpoch is one vertical training-log record.
	VFLEpoch = vfl.Epoch
	// VFLProblem is a vertically partitioned learning task.
	VFLProblem = vfl.Problem
	// VFLResult is a vertical run outcome.
	VFLResult = vfl.Result
	// SecureConfig parameterizes the Paillier-encrypted VFL protocol.
	SecureConfig = vfl.SecureConfig
	// SecureResult is the two-party encrypted protocol outcome.
	SecureResult = vfl.SecureResult
	// SecureNResult is the n-party encrypted protocol outcome.
	SecureNResult = vfl.SecureNResult
)

// Networked runtime (internal/fednet) and the trainer's RoundSource seam.
type (
	// NetCoordinator serves the wire protocol and drives HFL epochs whose
	// local updates arrive over HTTP.
	NetCoordinator = fednet.Coordinator
	// NetParticipant is the matching client wrapping one dataset shard.
	NetParticipant = fednet.Participant
	// NetLocalSource is the in-process reference RoundSource the networked
	// runtime is measured against.
	NetLocalSource = fednet.LocalSource
	// HFLRoundSource supplies an epoch's local updates from outside the
	// trainer — the seam NetCoordinator plugs into.
	HFLRoundSource = hfl.RoundSource
	// HFLRoundSpec is the server's per-round broadcast.
	HFLRoundSpec = hfl.RoundSpec
	// HFLRoundResult carries one round's collected local updates.
	HFLRoundResult = hfl.RoundResult
	// HFLAsyncConfig is the asynchronous (FedBuff-style) commit policy:
	// K-of-N quorum commits with staleness-discounted late folds. Attach
	// via NetCoordinator.Async on a streamed run; the fresh path is
	// bit-identical to the synchronous streamed fold.
	HFLAsyncConfig = hfl.AsyncConfig
	// HFLBufferedRuleError reports a buffered-only aggregation rule
	// (median, trimmed mean, Krum) configured on a path that never
	// materializes the round buffer (Stream or Async).
	HFLBufferedRuleError = hfl.BufferedRuleError
	// NetAsyncLocalSource is the in-process reference RoundSource for the
	// async commit policy — what a loopback async federation is
	// bit-identical to.
	NetAsyncLocalSource = fednet.AsyncLocalSource
)

// Networked runtime helpers.
var (
	// RunLoopback runs a coordinator and its N participants over a real
	// loopback HTTP listener in one call.
	RunLoopback = fednet.Loopback
	// RunTreeLoopback runs a two-level cohort tree (root coordinator, edge
	// sub-aggregators, participants) on the loopback interface.
	RunTreeLoopback = fednet.TreeLoopback
	// HFLPolyWeight builds the polynomial staleness decay
	// w(s) = (1+s)^(-alpha) used by HFLAsyncConfig.Weight; w(0) is exactly
	// 1 for every alpha.
	HFLPolyWeight = hfl.PolyWeight
)

// Scaling runtime (internal/sampling + the streaming aggregation seam): the
// pieces that take a round from O(population·d) memory to O(d + cohort) —
// deterministic client sampling, fold-on-arrival aggregation, cohort trees,
// and epoch-buffer release.
type (
	// Sampler draws each epoch's client cohort deterministically from
	// (seed, epoch): same config, same cohorts, independent of process
	// lifetime, resume, or arrival order. Attach via HFLConfig.Sample.
	Sampler = sampling.Sampler
	// SamplerConfig parameterizes a Sampler (seed, cohort size, optional
	// weights for weighted-without-replacement draws).
	SamplerConfig = sampling.Config
	// MeanStream is the streaming uniform-mean aggregation rule: updates
	// fold on arrival in a canonical segmented order, so streamed runs are
	// bit-identical to each other across topologies with the same segment
	// geometry. Attach via HFLTrainer.Stream or NetCoordinator.Stream.
	MeanStream = hfl.MeanStream
	// StreamAggregator supplies per-round streaming folds — the seam
	// MeanStream implements.
	StreamAggregator = hfl.StreamAggregator
	// StreamFold is one round's fold-on-arrival accumulator.
	StreamFold = hfl.Fold
	// StreamFoldResult is a closed fold's aggregate plus per-update
	// validation dot products.
	StreamFoldResult = hfl.FoldResult
	// BufferedRule is implemented by aggregation rules that cannot stream
	// (median, trimmed mean, Krum) and need the full round buffer.
	BufferedRule = hfl.BufferedRule
	// NetEdgeAggregator is the middle tier of a two-level cohort tree: it
	// folds its members' updates into one partial per round and submits it
	// to the root over /v1/partial.
	NetEdgeAggregator = fednet.EdgeAggregator
	// HFLRetainPolicy controls whether epoch delta buffers outlive the
	// estimator's Observe (HFLConfig.RetainDeltas).
	HFLRetainPolicy = hfl.RetainPolicy
	// VFLRetainPolicy is the vertical counterpart (VFLConfig.RetainDeltas,
	// releasing Epoch.Grad).
	VFLRetainPolicy = vfl.RetainPolicy
)

// Sampler constructors.
var (
	// NewSampler validates a SamplerConfig and builds the sampler.
	NewSampler = sampling.New
	// MustNewSampler is NewSampler panicking on invalid configuration.
	MustNewSampler = sampling.MustNew
)

// Retention policies (HFLConfig.RetainDeltas / VFLConfig.RetainDeltas).
const (
	// HFLRetainAll keeps every epoch's raw deltas alive (historical
	// default).
	HFLRetainAll = hfl.RetainAll
	// HFLReleaseAfterObserve frees each epoch's deltas once aggregation and
	// the Observer have consumed them.
	HFLReleaseAfterObserve = hfl.ReleaseAfterObserve
	// VFLRetainAll keeps every vertical epoch's Grad alive.
	VFLRetainAll = vfl.RetainAll
	// VFLReleaseAfterObserve frees each vertical epoch's Grad after the
	// Observer has run.
	VFLReleaseAfterObserve = vfl.ReleaseAfterObserve
)

// NetProtocol is the wire-protocol version string; both sides refuse to
// talk across a version mismatch.
const NetProtocol = fednet.Protocol

// NetProtocolV2 names the binary bulk-payload encoding negotiated at join
// time (the protocol itself stays NetProtocol; v2 only re-encodes round
// broadcasts, updates, and edge partials as raw little-endian frames).
// Coordinators pick it whenever a client offers it; set LegacyJSON on
// either side to pin the v1 JSON wire.
const NetProtocolV2 = fednet.ProtocolV2

// NetCodec encodes bulk wire payloads; NetCodecV1 (JSON) and NetCodecV2
// (binary) are the two implementations, chosen by join negotiation.
type NetCodec = fednet.Codec

// The negotiable wire codecs.
var (
	// NetCodecV1 is the digfl-fednet/1 JSON encoding.
	NetCodecV1 = fednet.CodecV1
	// NetCodecV2 is the digfl-fednet/2 binary encoding.
	NetCodecV2 = fednet.CodecV2
)

// WireError is a typed wire-protocol rejection (any non-2xx reply); match
// with errors.As and inspect Code.
type WireError = fednet.WireError

// Wire rejection codes carried in WireError.Code.
const (
	// WireStaleRound rejects an update for a round that is not open —
	// benign for the client (the epoch proceeded with the survivors).
	WireStaleRound = fednet.CodeStaleRound
	// WireBadShape rejects a wrong-length update. Fatal for the client.
	WireBadShape = fednet.CodeBadShape
	// WireNonFinite rejects an update carrying NaN/±Inf. Fatal for the
	// client.
	WireNonFinite = fednet.CodeNonFinite
	// WireBadFrame rejects a malformed digfl-fednet/2 binary frame
	// (truncated, oversized, or header-contradicting). Fatal for the
	// client.
	WireBadFrame = fednet.CodeBadFrame
	// WireRecovering is the 503 a restarted coordinator answers with
	// while it waits for its participants to re-join: transient — retry,
	// and re-join when the instance header changed (the built-in
	// Participant does both automatically).
	WireRecovering = fednet.CodeRecovering
	// WireTooStale is the 409 an async round answers a late update whose
	// origin is past the staleness window (HFLAsyncConfig.MaxStaleness) —
	// benign for the client, which skips forward to the open round.
	WireTooStale = fednet.CodeTooStale
)

// Vertical model kinds.
const (
	// VFLLinReg is vertical linear regression (the running example).
	VFLLinReg = vfl.LinReg
	// VFLLogReg is vertical logistic regression.
	VFLLogReg = vfl.LogReg
)

// Secure protocol entry points (Algorithm 3).
var (
	// RunSecure executes the Paillier-encrypted two-party vertical protocol
	// for the problem's model kind (exact MSE gradient for linear
	// regression, Taylor-approximated cross-entropy for logistic).
	RunSecure = vfl.RunSecure
	// RunSecureLinReg is RunSecure restricted to the paper's
	// linear-regression running example.
	RunSecureLinReg = vfl.RunSecureLinReg
	// RunSecureN generalizes the protocol to any number of parties.
	RunSecureN = vfl.RunSecureN
)

// Models (internal/nn).
type (
	// Model is the common parametric-model interface.
	Model = nn.Model
	// Classifier adds Predict to Model.
	Classifier = nn.Classifier
)

// Model constructors.
var (
	// NewLinearRegression builds least-squares regression.
	NewLinearRegression = nn.NewLinearRegression
	// NewLogisticRegression builds binary logistic regression.
	NewLogisticRegression = nn.NewLogisticRegression
	// NewSoftmaxRegression builds multinomial logistic regression.
	NewSoftmaxRegression = nn.NewSoftmaxRegression
	// NewMLP builds a one-hidden-layer perceptron.
	NewMLP = nn.NewMLP
	// NewCNN builds the small convolutional classifier.
	NewCNN = nn.NewCNN
	// HFLAccuracy evaluates a classifier on a dataset.
	HFLAccuracy = hfl.Accuracy
)

// Data handling (internal/dataset).
type (
	// Dataset is a design matrix with labels.
	Dataset = dataset.Dataset
	// Block is a contiguous feature range owned by a VFL participant.
	Block = dataset.Block
	// NonIIDConfig controls class-restricted horizontal partitioning.
	NonIIDConfig = dataset.NonIIDConfig
)

// Dataset generator configurations.
type (
	// ImageConfig parameterizes the class-prototype image generator.
	ImageConfig = dataset.ImageConfig
	// TabularConfig parameterizes the planted-ground-truth tabular generator.
	TabularConfig = dataset.TabularConfig
)

// Dataset tasks.
const (
	// Regression marks continuous-target datasets.
	Regression = dataset.Regression
	// Classification marks integer-label datasets.
	Classification = dataset.Classification
)

// Dataset helpers.
var (
	// SynthImages samples a synthetic image-classification dataset.
	SynthImages = dataset.SynthImages
	// SynthTabular samples a synthetic tabular dataset.
	SynthTabular = dataset.SynthTabular
	// MNISTLike, CIFARLike, MOTORLike and REALLike are the paper-dataset
	// stand-ins used throughout the experiments.
	MNISTLike = dataset.MNISTLike
	// CIFARLike is the noisier 10-class image preset.
	CIFARLike = dataset.CIFARLike
	// MOTORLike is the binary image preset.
	MOTORLike = dataset.MOTORLike
	// REALLike is the crawled-images preset.
	REALLike = dataset.REALLike
	// PartitionIID deals a dataset evenly to n participants.
	PartitionIID = dataset.PartitionIID
	// PartitionNonIID creates the paper's non-IID participant mix.
	PartitionNonIID = dataset.PartitionNonIID
	// VerticalBlocks splits features into contiguous per-party blocks.
	VerticalBlocks = dataset.VerticalBlocks
	// Mislabel corrupts a fraction of classification labels uniformly.
	Mislabel = dataset.Mislabel
	// FlipLabels corrupts labels with a targeted (y+1 mod C) flip.
	FlipLabels = dataset.FlipLabels
	// ScrambleFeatures destroys feature-target relationships while keeping
	// marginals, planting low-contribution VFL parties.
	ScrambleFeatures = dataset.ScrambleFeatures
)

// Shapley machinery (internal/shapley) and comparison baselines.
type (
	// Utility is a coalition value function.
	Utility = shapley.Utility
	// TMCConfig controls Truncated Monte Carlo Shapley.
	TMCConfig = shapley.TMCConfig
	// GTConfig controls group-testing Shapley.
	GTConfig = shapley.GTConfig
	// ContributionEngine is the pluggable contribution-estimator seam:
	// per-epoch Observe, Finalize → φ matrix + totals + cost, and
	// State/SetState for checkpoint/resume. Registered engines: exact,
	// exact-parallel, tmc, gt, gtg, dpvs.
	ContributionEngine = shapley.Engine
	// EngineSpec configures a contribution engine (population size,
	// validation-loss oracle, seed, per-engine knobs).
	EngineSpec = shapley.EngineSpec
	// EngineReport is a contribution engine's finalized attribution.
	EngineReport = shapley.Report
	// EngineState is a contribution engine's checkpoint snapshot.
	EngineState = shapley.EngineState
	// GTGConfig controls the GTG-Shapley engine (guided truncation +
	// within-round permutation sampling with convergence cutoff).
	GTGConfig = shapley.GTGConfig
	// DPVSConfig controls the DPVS-Shapley engine (dynamic pruning of
	// low-volatility participants).
	DPVSConfig = shapley.DPVSConfig
	// EngineValLoss is the validation-loss oracle engines reconstruct
	// coalition models against.
	EngineValLoss = shapley.ValLoss
)

// Contribution-engine registry.
var (
	// NewContributionEngine builds a registered engine by name.
	NewContributionEngine = shapley.NewEngine
	// ContributionEngines lists the registered engine names.
	ContributionEngines = shapley.Engines
	// RegisterContributionEngine adds a custom engine to the registry.
	RegisterContributionEngine = shapley.RegisterEngine
	// DefaultGTG and DefaultDPVS are the tuned engine configurations the
	// experiments use.
	DefaultGTG  = shapley.DefaultGTG
	DefaultDPVS = shapley.DefaultDPVS
	// PooledEngineValLoss makes a ValLoss safe for the exact-parallel
	// engine's concurrent evaluation.
	PooledEngineValLoss = shapley.PooledValLoss
)

// Robust-aggregation baselines (extension: hfl.Aggregator plugins that
// contrast with the reweight mechanism beyond the honest-majority regime).
type (
	// MedianAggregator is coordinate-wise median aggregation.
	MedianAggregator = robust.Median
	// TrimmedMeanAggregator is coordinate-wise trimmed-mean aggregation.
	TrimmedMeanAggregator = robust.TrimmedMean
	// KrumAggregator selects the single update closest to its neighbors
	// (Krum), tolerating F Byzantine participants when n ≥ 2F+3.
	KrumAggregator = robust.Krum
	// MultiKrumAggregator averages the M best-scored updates (Multi-Krum).
	MultiKrumAggregator = robust.MultiKrum
	// NormBoundAggregator clips every update to a maximum L2 norm before
	// the mean.
	NormBoundAggregator = robust.NormBound
	// HFLAggregator is the aggregation plugin interface: it returns the
	// round's global update or an error that fails the run.
	HFLAggregator = hfl.Aggregator
	// HFLAggregatorE is the historical name of the error-returning
	// aggregation interface, which is now the only one.
	//
	// Deprecated: use HFLAggregator.
	HFLAggregatorE = hfl.AggregatorE
	// HFLAggregatorFunc adapts the legacy panicking aggregate function
	// shape to the error-returning interface.
	//
	// Deprecated: implement HFLAggregator directly.
	HFLAggregatorFunc = hfl.AggregatorFunc
	// HFLScreener vets a round's collected updates before aggregation,
	// returning the positions to drop.
	HFLScreener = hfl.Screener
)

// Robust-aggregation constructors.
var (
	// NewTrimmedMean validates the trim count at construction instead of
	// panicking epochs into training.
	NewTrimmedMean = robust.NewTrimmedMean
)

// Adversarial defense (internal/robust screening + quarantine).
type (
	// ScreenConfig parameterizes the server-side update screen.
	ScreenConfig = robust.ScreenConfig
	// UpdateScreen is the hfl.Screener rejecting malformed updates and
	// clipping outlier norms against a running median.
	UpdateScreen = robust.UpdateScreen
	// Quarantine is the contribution-guided reweighter: rectified Eq. 17
	// weights plus permanent exclusion of persistently negative
	// contributors.
	Quarantine = robust.Quarantine
	// FedProx is the proximal-term heterogeneity defense: Apply installs
	// HFLConfig.Prox, adding μ·(w − θ) to each multi-step local gradient.
	// μ = 0 is bit-identical to builds without the term.
	FedProx = robust.FedProx
)

// Adversarial-defense constructors.
var (
	// NewUpdateScreen validates a ScreenConfig and builds the screen.
	NewUpdateScreen = robust.NewUpdateScreen
	// MustNewUpdateScreen is NewUpdateScreen panicking on invalid config.
	MustNewUpdateScreen = robust.MustNewUpdateScreen
	// NewQuarantine validates a Quarantine policy and builds it.
	NewQuarantine = robust.NewQuarantine
	// MustNewQuarantine is NewQuarantine panicking on invalid config.
	MustNewQuarantine = robust.MustNewQuarantine
)

// Attack simulation (internal/adversary).
type (
	// AttackKind selects the simulated attack behavior.
	AttackKind = adversary.Kind
	// AttackConfig parameterizes a deterministic adversary.
	AttackConfig = adversary.Config
	// Adversary makes seed-driven attack decisions; nil attacks nothing.
	Adversary = adversary.Adversary
	// AdversarySource wraps any HFLRoundSource, corrupting attacker updates
	// after the honest computation.
	AdversarySource = adversary.Source
)

// Attack kinds.
const (
	// AttackLabelFlip poisons attacker shards at setup (data poisoning).
	AttackLabelFlip = adversary.LabelFlip
	// AttackSignFlip negates and amplifies attacker updates.
	AttackSignFlip = adversary.SignFlip
	// AttackScalePoison amplifies attacker updates (model replacement).
	AttackScalePoison = adversary.ScalePoison
	// AttackFreeRider replaces attacker updates with low-magnitude noise.
	AttackFreeRider = adversary.FreeRider
	// AttackCollude makes all attackers push one shared malicious direction.
	AttackCollude = adversary.Collude
)

// Attack-simulation constructors.
var (
	// NewAdversary validates an AttackConfig and builds the adversary.
	NewAdversary = adversary.New
	// MustNewAdversary is NewAdversary panicking on invalid config.
	MustNewAdversary = adversary.MustNew
	// ParseAttackKind maps the wire/CLI names ("sign_flip", ...) to a Kind.
	ParseAttackKind = adversary.ParseKind
)

// Fault tolerance (internal/faults + checkpoint machinery).
type (
	// FaultConfig parameterizes the deterministic fault injector.
	FaultConfig = faults.Config
	// FaultInjector makes seeded, order-independent fault decisions; a nil
	// injector injects nothing.
	FaultInjector = faults.Injector
	// CrashError reports an injected trainer crash; resume from the latest
	// checkpoint via Config.Resume.
	CrashError = faults.CrashError
	// EstimatorState is the serializable state of an online estimator,
	// captured by State and reinstalled by SetState around a crash.
	EstimatorState = core.EstimatorState
	// HFLTrainerCheckpoint is the HFL trainer's resumable snapshot.
	HFLTrainerCheckpoint = hfl.Checkpoint
	// VFLTrainerCheckpoint is the VFL trainer's resumable snapshot.
	VFLTrainerCheckpoint = vfl.Checkpoint
	// HFLCheckpoint bundles an HFL trainer snapshot with estimator state
	// for persistence.
	HFLCheckpoint = logio.HFLCheckpoint
	// VFLCheckpoint bundles a VFL trainer snapshot with estimator state.
	VFLCheckpoint = logio.VFLCheckpoint
)

// Fault-tolerance constructors and helpers.
var (
	// NewFaultInjector validates a FaultConfig and builds the injector.
	NewFaultInjector = faults.New
	// MustNewFaultInjector is NewFaultInjector, panicking on invalid config.
	MustNewFaultInjector = faults.MustNew
	// ErrRetriesExhausted reports a secure round that failed past
	// SecureConfig.MaxRetries.
	ErrRetriesExhausted = faults.ErrRetriesExhausted
	// ErrVFLNonFinite is the sentinel wrapped by VFLConfig.FailNonFinite
	// aborts when an epoch's update or validation loss turns NaN/±Inf.
	ErrVFLNonFinite = vfl.ErrNonFinite
	// WriteHFLCheckpoint serializes an HFL checkpoint (trainer + estimator).
	WriteHFLCheckpoint = logio.WriteHFLCheckpoint
	// ReadHFLCheckpoint deserializes an HFL checkpoint.
	ReadHFLCheckpoint = logio.ReadHFLCheckpoint
	// WriteVFLCheckpoint serializes a VFL checkpoint.
	WriteVFLCheckpoint = logio.WriteVFLCheckpoint
	// ReadVFLCheckpoint deserializes a VFL checkpoint.
	ReadVFLCheckpoint = logio.ReadVFLCheckpoint
)

// Training-log persistence: archive logs during training and evaluate
// contributions offline.
var (
	// WriteHFLLog serializes an HFL training log as line-delimited JSON.
	WriteHFLLog = logio.WriteHFL
	// ReadHFLLog deserializes an HFL training log.
	ReadHFLLog = logio.ReadHFL
	// WriteVFLLog serializes a VFL training log.
	WriteVFLLog = logio.WriteVFL
	// ReadVFLLog deserializes a VFL training log.
	ReadVFLLog = logio.ReadVFL
	// NewHFLLogWriter opens a streaming HFL archive: epochs are written as
	// they complete (byte-identical to WriteHFLLog), the form the networked
	// coordinator's Archive uses.
	NewHFLLogWriter = logio.NewHFLWriter
)

// HFLLogWriter streams an HFL training log one epoch at a time.
type HFLLogWriter = logio.HFLWriter

// Shapley and baseline functions.
var (
	// ExactShapley enumerates all 2^n coalitions.
	ExactShapley = shapley.Exact
	// TMCShapley is the truncated Monte Carlo estimator.
	TMCShapley = shapley.TMC
	// GTShapley is the group-testing estimator.
	GTShapley = shapley.GT
	// MR is the multi-round reconstruction baseline.
	MR = baselines.MR
	// IM is the update-projection baseline.
	IM = baselines.IM
	// Pearson is the correlation metric the paper reports.
	Pearson = metrics.Pearson
)
