package digfl_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"digfl"
	"digfl/internal/tensor"
)

// TestFacadeEndToEndHFL exercises the public API exactly as the README
// quickstart does: build data, train, estimate contributions, reweight.
func TestFacadeEndToEndHFL(t *testing.T) {
	rng := tensor.NewRNG(1)
	full := quickstartData(800, 1)
	train, val := full.Split(0.2, rng)
	parts := digfl.PartitionIID(train, 4, rng)
	parts[3] = digfl.Mislabel(parts[3], 0.8, rng)

	tr := &digfl.HFLTrainer{
		Model: digfl.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts: parts,
		Val:   val,
		Cfg:   digfl.HFLConfig{Epochs: 15, LR: 0.3, KeepLog: true},
	}
	res := tr.Run()
	attr := digfl.EstimateHFL(res.Log, 4, digfl.ResourceSaving, nil)
	if len(attr.Totals) != 4 {
		t.Fatalf("got %d totals", len(attr.Totals))
	}
	for i := 0; i < 3; i++ {
		if attr.Totals[3] >= attr.Totals[i] {
			t.Fatalf("mislabeled participant should rank last: %v", attr.Totals)
		}
	}
	// Reweighted training via the facade.
	tr2 := &digfl.HFLTrainer{
		Model:      digfl.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts:      parts,
		Val:        val,
		Cfg:        digfl.HFLConfig{Epochs: 15, LR: 0.3},
		Reweighter: &digfl.HFLReweighter{},
	}
	if acc := digfl.HFLAccuracy(tr2.Run().Model, val); acc < 0.5 {
		t.Fatalf("reweighted accuracy %v too low", acc)
	}
}

func TestFacadeEndToEndVFL(t *testing.T) {
	full := vflData(300, 2)
	train, val := full.Split(0.2, tensor.NewRNG(2))
	prob := &digfl.VFLProblem{
		Train:  train,
		Val:    val,
		Blocks: digfl.VerticalBlocks(train.Dim(), 3),
		Kind:   digfl.VFLLinReg,
	}
	tr := &digfl.VFLTrainer{Problem: prob, Cfg: digfl.VFLConfig{Epochs: 25, LR: 0.05, KeepLog: true}}
	res := tr.Run()
	attr := digfl.EstimateVFL(res.Log, prob.Blocks, digfl.ResourceSaving, nil)
	actual := digfl.ExactShapley(3, func(s []int) float64 { return tr.Utility(s) })
	if pcc := digfl.Pearson(attr.Totals, actual); pcc < 0.8 {
		t.Fatalf("facade VFL PCC %.3f", pcc)
	}
}

// quickstartData builds the image dataset the quickstart example uses.
func quickstartData(n int, seed int64) digfl.Dataset {
	return digfl.MNISTLike(n, seed)
}

// vflData builds a tabular regression dataset with noise features at the end.
func vflData(n int, seed int64) digfl.Dataset {
	return digfl.SynthTabular(digfl.TabularConfig{
		Name: "facade", N: n, D: 6, Task: digfl.Regression,
		Informative: 4, Noise: 0.2, Seed: seed,
	})
}

// TestFacadeSurface touches every exported constructor and function var of
// the facade, so a renamed or dropped re-export fails here before any
// consumer sees it.
func TestFacadeSurface(t *testing.T) {
	vars := map[string]any{
		"NewHFLEstimator": digfl.NewHFLEstimator, "NewVFLEstimator": digfl.NewVFLEstimator,
		"EstimateHFL": digfl.EstimateHFL, "EstimateHFLSubset": digfl.EstimateHFLSubset,
		"EstimateVFL": digfl.EstimateVFL, "LocalHVP": digfl.LocalHVP, "TrainHVP": digfl.TrainHVP,
		"ReweightWeights": digfl.ReweightWeights, "RankParticipants": digfl.RankParticipants,
		"SelectTopK": digfl.SelectTopK, "PaymentShares": digfl.PaymentShares,
		"SampleContributions":           digfl.SampleContributions,
		"AccumulateSampleContributions": digfl.AccumulateSampleContributions,
		"RunSecure":                     digfl.RunSecure, "RunSecureLinReg": digfl.RunSecureLinReg,
		"RunSecureN":            digfl.RunSecureN,
		"NewLinearRegression":   digfl.NewLinearRegression,
		"NewLogisticRegression": digfl.NewLogisticRegression,
		"NewSoftmaxRegression":  digfl.NewSoftmaxRegression,
		"NewMLP":                digfl.NewMLP, "NewCNN": digfl.NewCNN, "HFLAccuracy": digfl.HFLAccuracy,
		"SynthImages": digfl.SynthImages, "SynthTabular": digfl.SynthTabular,
		"MNISTLike": digfl.MNISTLike, "CIFARLike": digfl.CIFARLike,
		"MOTORLike": digfl.MOTORLike, "REALLike": digfl.REALLike,
		"PartitionIID": digfl.PartitionIID, "PartitionNonIID": digfl.PartitionNonIID,
		"VerticalBlocks": digfl.VerticalBlocks, "Mislabel": digfl.Mislabel,
		"FlipLabels": digfl.FlipLabels, "ScrambleFeatures": digfl.ScrambleFeatures,
		"WriteHFLLog": digfl.WriteHFLLog, "ReadHFLLog": digfl.ReadHFLLog,
		"WriteVFLLog": digfl.WriteVFLLog, "ReadVFLLog": digfl.ReadVFLLog,
		"ExactShapley": digfl.ExactShapley, "TMCShapley": digfl.TMCShapley,
		"GTShapley": digfl.GTShapley, "MR": digfl.MR, "IM": digfl.IM,
		"Pearson":        digfl.Pearson,
		"NewTraceWriter": digfl.NewTraceWriter, "ReadTrace": digfl.ReadTrace, "Tee": digfl.Tee,
	}
	for name, v := range vars {
		if reflect.ValueOf(v).IsNil() {
			t.Fatalf("facade var %s is nil", name)
		}
	}

	// Constructors that no other facade test builds.
	rng := tensor.NewRNG(5)
	if digfl.NewMLP(4, 3, 2, rng).NumParams() == 0 ||
		digfl.NewCNN(4, 2, 2, 2, rng).NumParams() == 0 ||
		digfl.NewLinearRegression(3, false).NumParams() != 3 ||
		digfl.NewLogisticRegression(3, false).NumParams() != 3 {
		t.Fatal("model constructors built empty models")
	}
	for _, d := range []digfl.Dataset{
		digfl.CIFARLike(40, 5), digfl.MOTORLike(40, 5), digfl.REALLike(40, 5),
		digfl.SynthImages(digfl.ImageConfig{Name: "s", N: 40, Side: 4, Classes: 2, Noise: 0.5, Seed: 5}),
	} {
		if d.Len() != 40 {
			t.Fatalf("dataset preset produced %d samples", d.Len())
		}
		if digfl.FlipLabels(d, 0.5, rng).Len() != 40 ||
			digfl.ScrambleFeatures(d, []int{0}, rng).Len() != 40 {
			t.Fatal("corruptions changed the sample count")
		}
	}
	if parts := digfl.PartitionNonIID(digfl.MNISTLike(60, 5),
		digfl.NonIIDConfig{N: 3, M: 1}, rng); len(parts) != 3 {
		t.Fatal("PartitionNonIID returned wrong part count")
	}

	// Selection, payment and robust-aggregation helpers.
	phi := []float64{0.1, -0.2, 0.4}
	if r := digfl.RankParticipants(phi); r[0] != 2 {
		t.Fatalf("rank = %v", r)
	}
	if k := digfl.SelectTopK(phi, 2); len(k) != 2 || k[0] != 2 {
		t.Fatalf("topk = %v", k)
	}
	if p := digfl.PaymentShares(phi); math.Abs(p[0]+p[1]+p[2]-1) > 1e-12 {
		t.Fatalf("payment shares = %v", p)
	}
	var _ digfl.MedianAggregator
	var _ digfl.TrimmedMeanAggregator
	var _ digfl.HVPProvider
	var _ digfl.Utility
	var _ digfl.VFLReweighter
	var _ digfl.RoundInfo
	var _ digfl.Block
	var _ digfl.Classifier
	if digfl.Interactive == digfl.ResourceSaving || digfl.Regression == digfl.Classification ||
		digfl.VFLLinReg == digfl.VFLLogReg {
		t.Fatal("facade mode constants collapsed")
	}
}

// TestFacadeObservability drives the new Runtime surface end to end through
// the facade: a Tee of both sinks, exact counters, a readable trace, and
// bit-identical attributions with and without observability.
func TestFacadeObservability(t *testing.T) {
	rng := tensor.NewRNG(6)
	full := quickstartData(400, 6)
	train, val := full.Split(0.2, rng)
	parts := digfl.PartitionIID(train, 3, rng)
	build := func(rt digfl.Runtime) *digfl.HFLTrainer {
		return &digfl.HFLTrainer{
			Model: digfl.NewSoftmaxRegression(train.Dim(), train.Classes),
			Parts: parts, Val: val,
			Cfg: digfl.HFLConfig{Epochs: 6, LR: 0.3, KeepLog: true, Runtime: rt},
		}
	}
	plain := build(digfl.Runtime{}).Run()

	collector := &digfl.Collector{}
	var buf bytes.Buffer
	tw := digfl.NewTraceWriter(&buf)
	observed := build(digfl.Runtime{Sink: digfl.Tee(collector, tw)}).Run()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	a := digfl.EstimateHFL(plain.Log, 3, digfl.ResourceSaving, nil)
	b := digfl.EstimateHFL(observed.Log, 3, digfl.ResourceSaving, nil)
	for i := range a.Totals {
		if a.Totals[i] != b.Totals[i] {
			t.Fatalf("observability perturbed attribution %d: %v vs %v", i, a.Totals[i], b.Totals[i])
		}
	}

	snap := collector.Snapshot()
	if snap.Epochs != 6 || snap.LocalUpdates != 18 || snap.Aggregates != 6 {
		t.Fatalf("snapshot counters wrong: %s", snap)
	}
	events, err := digfl.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends int
	for _, e := range events {
		switch e.Kind {
		case digfl.KindEpochStart:
			starts++
		case digfl.KindEpochEnd:
			ends++
		case digfl.KindLocalUpdate, digfl.KindAggregate, digfl.KindEstimatorRound,
			digfl.KindPaillierEnc, digfl.KindPaillierDec, digfl.KindPaillierAdd,
			digfl.KindPaillierMulPlain, digfl.KindPoolTask:
		default:
			t.Fatalf("unknown event kind %v in trace", e.Kind)
		}
	}
	if starts != 6 || ends != 6 {
		t.Fatalf("trace has %d starts / %d ends, want 6/6", starts, ends)
	}
}

func TestFacadeShapleyTools(t *testing.T) {
	u := func(s []int) float64 { return float64(len(s)) }
	exact := digfl.ExactShapley(3, u)
	for _, v := range exact {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("exact = %v", exact)
		}
	}
	tmc, _ := digfl.TMCShapley(3, u, digfl.TMCConfig{MaxEvals: 100, RNG: tensor.NewRNG(3)})
	gt, _ := digfl.GTShapley(3, u, digfl.GTConfig{Samples: 2000, RNG: tensor.NewRNG(4)})
	for i := 0; i < 3; i++ {
		if math.Abs(tmc[i]-1) > 0.2 || math.Abs(gt[i]-1) > 0.3 {
			t.Fatalf("tmc=%v gt=%v", tmc, gt)
		}
	}
	w := digfl.ReweightWeights([]float64{1, -1, 3})
	if math.Abs(w[0]-0.25) > 1e-12 || w[1] != 0 || math.Abs(w[2]-0.75) > 1e-12 {
		t.Fatalf("weights = %v", w)
	}
}
