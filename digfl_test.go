package digfl_test

import (
	"math"
	"testing"

	"digfl"
	"digfl/internal/tensor"
)

// TestFacadeEndToEndHFL exercises the public API exactly as the README
// quickstart does: build data, train, estimate contributions, reweight.
func TestFacadeEndToEndHFL(t *testing.T) {
	rng := tensor.NewRNG(1)
	full := quickstartData(800, 1)
	train, val := full.Split(0.2, rng)
	parts := digfl.PartitionIID(train, 4, rng)
	parts[3] = digfl.Mislabel(parts[3], 0.8, rng)

	tr := &digfl.HFLTrainer{
		Model: digfl.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts: parts,
		Val:   val,
		Cfg:   digfl.HFLConfig{Epochs: 15, LR: 0.3, KeepLog: true},
	}
	res := tr.Run()
	attr := digfl.EstimateHFL(res.Log, 4, digfl.ResourceSaving, nil)
	if len(attr.Totals) != 4 {
		t.Fatalf("got %d totals", len(attr.Totals))
	}
	for i := 0; i < 3; i++ {
		if attr.Totals[3] >= attr.Totals[i] {
			t.Fatalf("mislabeled participant should rank last: %v", attr.Totals)
		}
	}
	// Reweighted training via the facade.
	tr2 := &digfl.HFLTrainer{
		Model:      digfl.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts:      parts,
		Val:        val,
		Cfg:        digfl.HFLConfig{Epochs: 15, LR: 0.3},
		Reweighter: &digfl.HFLReweighter{},
	}
	if acc := digfl.HFLAccuracy(tr2.Run().Model, val); acc < 0.5 {
		t.Fatalf("reweighted accuracy %v too low", acc)
	}
}

func TestFacadeEndToEndVFL(t *testing.T) {
	full := vflData(300, 2)
	train, val := full.Split(0.2, tensor.NewRNG(2))
	prob := &digfl.VFLProblem{
		Train:  train,
		Val:    val,
		Blocks: digfl.VerticalBlocks(train.Dim(), 3),
		Kind:   digfl.VFLLinReg,
	}
	tr := &digfl.VFLTrainer{Problem: prob, Cfg: digfl.VFLConfig{Epochs: 25, LR: 0.05, KeepLog: true}}
	res := tr.Run()
	attr := digfl.EstimateVFL(res.Log, prob.Blocks, digfl.ResourceSaving, nil)
	actual := digfl.ExactShapley(3, func(s []int) float64 { return tr.Utility(s) })
	if pcc := digfl.Pearson(attr.Totals, actual); pcc < 0.8 {
		t.Fatalf("facade VFL PCC %.3f", pcc)
	}
}

// quickstartData builds the image dataset the quickstart example uses.
func quickstartData(n int, seed int64) digfl.Dataset {
	return digfl.MNISTLike(n, seed)
}

// vflData builds a tabular regression dataset with noise features at the end.
func vflData(n int, seed int64) digfl.Dataset {
	return digfl.SynthTabular(digfl.TabularConfig{
		Name: "facade", N: n, D: 6, Task: digfl.Regression,
		Informative: 4, Noise: 0.2, Seed: seed,
	})
}

func TestFacadeShapleyTools(t *testing.T) {
	u := func(s []int) float64 { return float64(len(s)) }
	exact := digfl.ExactShapley(3, u)
	for _, v := range exact {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("exact = %v", exact)
		}
	}
	tmc, _ := digfl.TMCShapley(3, u, digfl.TMCConfig{MaxEvals: 100, RNG: tensor.NewRNG(3)})
	gt, _ := digfl.GTShapley(3, u, digfl.GTConfig{Samples: 2000, RNG: tensor.NewRNG(4)})
	for i := 0; i < 3; i++ {
		if math.Abs(tmc[i]-1) > 0.2 || math.Abs(gt[i]-1) > 0.3 {
			t.Fatalf("tmc=%v gt=%v", tmc, gt)
		}
	}
	w := digfl.ReweightWeights([]float64{1, -1, 3})
	if math.Abs(w[0]-0.25) > 1e-12 || w[1] != 0 || math.Abs(w[2]-0.75) > 1e-12 {
		t.Fatalf("weights = %v", w)
	}
}
