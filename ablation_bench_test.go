package digfl_test

// Ablation benchmarks for the design choices DESIGN.md calls out: local
// training depth (client drift vs estimate quality), TMC truncation, the
// GT sampling budget, exact-vs-finite-difference HVPs, and Paillier key
// size. These are not paper artifacts; they justify the defaults the
// reproduction uses.

import (
	"testing"

	"digfl/internal/core"
	"digfl/internal/dataset"
	"digfl/internal/experiments"
	"digfl/internal/hfl"
	"digfl/internal/metrics"
	"digfl/internal/nn"
	"digfl/internal/robust"
	"digfl/internal/shapley"
	"digfl/internal/tensor"
	"digfl/internal/vfl"
)

// BenchmarkAblationLocalSteps measures how the DIG-FL-vs-actual correlation
// on a non-IID federation depends on the local training depth. With one
// local step, non-IID gradients still average into a useful global gradient
// and removal-based ground truth diverges from per-epoch alignment; deeper
// local training surfaces the drift and the correlation recovers.
func BenchmarkAblationLocalSteps(b *testing.B) {
	for _, steps := range []int{1, 3, 5} {
		b.Run(benchName("steps", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.HFLSetting{
					Dataset: "CIFAR10", N: 5, M: 2, Corruption: experiments.NonIID,
					LocalSteps: steps, Samples: 800, Epochs: 6, LR: 0.3, Seed: 42,
				}
				tr := experiments.BuildHFL(s)
				run := tr.Run()
				attr := core.EstimateHFL(run.Log, 5, core.ResourceSaving, nil)
				actual := shapley.Exact(5, func(sub []int) float64 { return tr.Utility(sub) })
				b.ReportMetric(metrics.Pearson(attr.Totals, actual), "PCC")
			}
		})
	}
}

// BenchmarkAblationTMCTruncation compares untruncated Monte Carlo with the
// truncated variant at the same retraining budget.
func BenchmarkAblationTMCTruncation(b *testing.B) {
	s := experiments.HFLSetting{
		Dataset: "MNIST", N: 8, M: 3, Corruption: experiments.Mislabeled, MislabelFrac: 0.7,
		LocalSteps: 3, Samples: 800, Epochs: 6, LR: 0.3, Seed: 42,
	}
	tr := experiments.BuildHFL(s)
	actual := shapley.Exact(8, func(sub []int) float64 { return tr.Utility(sub) })
	for _, tol := range []float64{0, 0.01, 0.05} {
		b.Run(benchName("tol%", int(tol*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, evals := shapley.TMC(8, tr.Utility, shapley.TMCConfig{
					MaxEvals: shapley.BudgetTMC(8), Tolerance: tol, RNG: tensor.NewRNG(7),
				})
				b.ReportMetric(metrics.Pearson(est, actual), "PCC")
				b.ReportMetric(float64(evals), "retrains")
			}
		})
	}
}

// BenchmarkAblationGTBudget sweeps the GT-Shapley coalition budget.
func BenchmarkAblationGTBudget(b *testing.B) {
	s := experiments.HFLSetting{
		Dataset: "MNIST", N: 8, M: 3, Corruption: experiments.Mislabeled, MislabelFrac: 0.7,
		LocalSteps: 3, Samples: 800, Epochs: 6, LR: 0.3, Seed: 43,
	}
	tr := experiments.BuildHFL(s)
	actual := shapley.Exact(8, func(sub []int) float64 { return tr.Utility(sub) })
	base := shapley.BudgetGT(8)
	for _, mult := range []int{1, 4, 16} {
		b.Run(benchName("budget-x", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, _ := shapley.GT(8, tr.Utility, shapley.GTConfig{
					Samples: base * mult, RNG: tensor.NewRNG(9),
				})
				b.ReportMetric(metrics.Pearson(est, actual), "PCC")
			}
		})
	}
}

// BenchmarkAblationHVP times the exact logistic-regression HVP against the
// generic finite-difference fallback that non-convex models use.
func BenchmarkAblationHVP(b *testing.B) {
	rng := tensor.NewRNG(3)
	full := dataset.SynthTabular(dataset.TabularConfig{
		Name: "hvp", N: 2000, D: 50, Task: dataset.Classification,
		Informative: 30, Noise: 0.3, Seed: 3,
	})
	model := nn.NewLogisticRegression(50, true)
	rng.Normal(model.Params(), 0, 0.3)
	v := rng.NormalVec(model.NumParams(), 0, 1)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model.HVP(full.X, full.Y, v)
		}
	})
	b.Run("finite-diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nn.FDHVP(model, full.X, full.Y, v)
		}
	})
}

// BenchmarkAblationPaillierKeyBits times one secure training epoch at
// different key sizes (the paper uses 1024-bit keys).
func BenchmarkAblationPaillierKeyBits(b *testing.B) {
	full := dataset.SynthTabular(dataset.TabularConfig{
		Name: "sec", N: 50, D: 4, Task: dataset.Regression,
		Informative: 3, Noise: 0.2, Seed: 5,
	})
	train, val := full.Split(0.2, tensor.NewRNG(5))
	prob := &vfl.Problem{
		Train: train, Val: val,
		Blocks: dataset.VerticalBlocks(4, 2), Kind: vfl.LinReg,
	}
	for _, bits := range []int{256, 512, 1024} {
		b.Run(benchName("bits", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := vfl.RunSecureLinReg(prob, vfl.SecureConfig{
					Epochs: 1, LR: 0.05, KeyBits: bits, MaskSeed: 11,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CommBytes), "commBytes")
			}
		})
	}
}

// BenchmarkAblationRobustAggregation contrasts the DIG-FL reweight
// mechanism with classical Byzantine-robust rules under majority corruption
// (4 of 5 participants with 90% mislabeled data): median and trimmed mean
// assume an honest majority and follow the corrupted crowd, while DIG-FL's
// validation anchor keeps working — the Fig. 7 regime.
func BenchmarkAblationRobustAggregation(b *testing.B) {
	rng := tensor.NewRNG(5)
	full := dataset.SynthImages(dataset.ImageConfig{
		Name: "rob", N: 1500, Side: 8, Classes: 10, Noise: 1.6, Seed: 5,
	})
	train, val := full.Split(0.2, rng)
	parts := dataset.PartitionIID(train, 5, rng)
	for i := 1; i < 5; i++ {
		parts[i] = dataset.Mislabel(parts[i], 0.9, rng.Split(int64(i)))
	}
	run := func(agg hfl.Aggregator, rw hfl.Reweighter) float64 {
		tr := &hfl.Trainer{
			Model:      nn.NewSoftmaxRegression(train.Dim(), train.Classes),
			Parts:      parts,
			Val:        val,
			Cfg:        hfl.Config{Epochs: 20, LR: 0.3},
			Aggregator: agg,
			Reweighter: rw,
		}
		return hfl.Accuracy(tr.Run().Model, val)
	}
	cases := []struct {
		name string
		agg  hfl.Aggregator
		rw   hfl.Reweighter
	}{
		{"plain", nil, nil},
		{"median", robust.Median{}, nil},
		{"trimmed", robust.TrimmedMean{Trim: 1}, nil},
		{"digfl", nil, &core.HFLReweighter{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(run(c.agg, c.rw), "accuracy")
			}
		})
	}
}

// BenchmarkAblationVFLReweight exercises the vertical reweight mechanism
// (Sec. IV-D / Lemma 5): one party's features are scrambled (marginals
// preserved, signal destroyed); per-epoch block reweighting suppresses its
// updates and reaches a lower validation loss at the same epoch budget.
func BenchmarkAblationVFLReweight(b *testing.B) {
	full := dataset.SynthTabular(dataset.TabularConfig{
		Name: "vrw", N: 600, D: 9, Task: dataset.Regression,
		Informative: 9, Noise: 0.3, Seed: 8,
	})
	// Scramble the last block's columns: worthless but plausible features.
	full = dataset.ScrambleFeatures(full, []int{6, 7, 8}, tensor.NewRNG(9))
	train, val := full.Split(0.2, tensor.NewRNG(8))
	prob := &vfl.Problem{
		Train: train, Val: val,
		Blocks: dataset.VerticalBlocks(9, 3), Kind: vfl.LinReg,
	}
	run := func(rw vfl.Reweighter, lr float64) float64 {
		tr := &vfl.Trainer{Problem: prob, Cfg: vfl.Config{Epochs: 30, LR: lr}, Reweighter: rw}
		return tr.Run().FinalLoss
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(nil, 0.05), "finalValLoss")
		}
	})
	// Eq. 31 normalizes the block weights to Σω = 1, shrinking the total
	// step mass by ~1/n versus plain training (every block at weight 1); the
	// reweighted arm therefore runs at n·α so the comparison isolates the
	// *allocation* across blocks rather than the step size.
	b.Run("digfl-reweight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(&core.VFLReweighter{Blocks: prob.Blocks}, 0.15), "finalValLoss")
		}
	})
}

// BenchmarkAblationEstimatorThroughput measures the raw cost of one DIG-FL
// Observe call — the per-epoch overhead a production server would pay.
func BenchmarkAblationEstimatorThroughput(b *testing.B) {
	const n, p = 100, 10000
	rng := tensor.NewRNG(1)
	ep := &hfl.Epoch{T: 1, LR: 0.1, ValGrad: rng.NormalVec(p, 0, 1)}
	for i := 0; i < n; i++ {
		ep.Deltas = append(ep.Deltas, rng.NormalVec(p, 0, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := core.NewHFLEstimator(n, p, core.ResourceSaving, nil)
		ep.T = 1
		est.Observe(ep)
	}
	b.ReportMetric(float64(n*p), "floats/epoch")
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + "=" + string(buf)
}
