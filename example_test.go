package digfl_test

import (
	"fmt"

	"digfl"
	"digfl/internal/tensor"
)

// Example demonstrates the core DIG-FL workflow: train a federation, then
// estimate every participant's Shapley value from the training log alone.
func Example() {
	rng := tensor.NewRNG(3)
	full := digfl.MNISTLike(800, 3)
	train, val := full.Split(0.2, rng)
	parts := digfl.PartitionIID(train, 3, rng)
	parts[1] = digfl.Mislabel(parts[1], 0.9, rng)

	tr := &digfl.HFLTrainer{
		Model: digfl.NewSoftmaxRegression(train.Dim(), train.Classes),
		Parts: parts,
		Val:   val,
		Cfg:   digfl.HFLConfig{Epochs: 10, LR: 0.3, KeepLog: true},
	}
	res := tr.Run()
	attr := digfl.EstimateHFL(res.Log, 3, digfl.ResourceSaving, nil)

	order := digfl.RankParticipants(attr.Totals)
	fmt.Printf("lowest-contribution participant: p%d\n", order[len(order)-1])
	// Output:
	// lowest-contribution participant: p1
}

// ExampleReweightWeights shows Eq. 17: rectified, normalized per-epoch
// contributions become aggregation weights.
func ExampleReweightWeights() {
	fmt.Println(digfl.ReweightWeights([]float64{3, -1, 1}))
	// Output:
	// [0.75 0 0.25]
}

// ExampleExactShapley computes the exact Shapley value of a tiny additive
// game.
func ExampleExactShapley() {
	utility := func(s []int) float64 {
		var v float64
		for _, i := range s {
			v += float64(i + 1) // participant i is worth i+1
		}
		return v
	}
	fmt.Println(digfl.ExactShapley(3, utility))
	// Output:
	// [1 2 3]
}
