# Build, test and verification entry points for the digfl module.
# (stdlib-only; no tool dependencies beyond the Go toolchain)

GO ?= go

.PHONY: build test bench verify verify-faults verify-net verify-adv verify-scale verify-wire verify-crash verify-engines verify-async bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# verify is the full pre-submit recipe referenced by README.md: vet every
# package and exercise every concurrent path under the race detector.
# Note: the -race run takes several minutes on small machines; scope it to
# touched packages while iterating ($(GO) test -race ./internal/<pkg>/).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) verify-net
	$(MAKE) verify-adv
	$(MAKE) verify-scale
	$(MAKE) verify-wire
	$(MAKE) verify-crash
	$(MAKE) verify-engines
	$(MAKE) verify-async

# verify-faults runs the fault-injection suite: the determinism gate
# (TestFaultScheduleDeterministic runs the full dropout/straggler/crash/
# checkpoint/resume lifecycle twice over 3 fixed seeds and fails on any
# divergence in schedule, event trace, model bits, or attribution), the
# crash-resume bit-identity checks, and the injector/trainer/secure-retry
# fault tests across all packages. -count=1 defeats the test cache so the
# lifecycle actually re-executes.
verify-faults:
	$(GO) test -count=1 -run 'Fault|Crash|Dropout|Retr|Survivor|Checkpoint|Resume|Straggl|Backoff' \
		./internal/faults/ ./internal/hfl/ ./internal/vfl/ ./internal/logio/ ./internal/robust/ ./internal/experiments/

# verify-net runs the networked-runtime determinism gate: the loopback
# bit-identity test (3 participants over real HTTP vs the in-process
# trainer, across 3 fixed seeds, model/curve/archive/phi compared bit for
# bit), the straggler-deadline survivor equivalence, retry transparency
# under injected request loss, and cancellation promptness — plus go vet on
# the package. -count=1 defeats the test cache so the wire is actually
# exercised.
verify-net:
	$(GO) vet ./internal/fednet/
	$(GO) test -count=1 -run 'Loopback|LocalSource|Straggler|Retry|Cancel|Wire|Score' ./internal/fednet/

# verify-scale runs the 100k-participant scaling gate: deterministic cohort
# sampling (3 seeds x rerun and crash/resume bit-identity, sampling composed
# with dropout faults), the streaming-aggregation equivalence tests
# (in-process streamed == flat-streamed loopback == two-level cohort tree,
# bit for bit across 3 seeds), the delta-retention release tests, and the
# bounded-memory gate (a 100k-participant streamed round must complete with
# total allocations bounded by the cohort, not the population). -count=1
# defeats the test cache so the memory measurement re-executes.
verify-scale:
	$(GO) vet ./internal/sampling/ ./internal/hfl/ ./internal/fednet/
	$(GO) test -count=1 -run 'Sample|Sampled|Cohort|Stream|MeanFold|Scale100k|Retain|Tree|TotalsOnly|LongPoll' \
		./internal/sampling/ ./internal/hfl/ ./internal/core/ ./internal/fednet/ ./internal/vfl/

# verify-wire runs the binary-wire gate: the frame round-trip tests, the
# cross-codec equivalence matrix (v1 clients x v2 coordinator and vice
# versa, plus tree roots, bit-identical to the in-process trainer across 3
# seeds), the malformed-frame rejection tests (truncated/oversized/NaN
# binary payloads answer 422, never a panic), a fuzz smoke pass over the
# three binary frame decoders, the pooled-buffer steady-state allocation
# test, and the bytes+allocs gate (binary must at least halve bytes on wire
# and allocations per round vs JSON on the streamed sampled benchmark).
# -count=1 defeats the test cache so the gate re-executes.
verify-wire:
	$(GO) vet ./internal/fednet/ ./internal/tensor/ ./internal/experiments/
	$(GO) test -count=1 -run 'Codec|Frame|Pool|SizeClass|WireCodec|WireDeterministic' \
		./internal/fednet/ ./internal/tensor/ ./internal/experiments/
	$(GO) test -count=1 -run '^$$' -fuzz FuzzDecodeUpdateFrame -fuzztime 5s ./internal/fednet/
	$(GO) test -count=1 -run '^$$' -fuzz FuzzDecodePartialFrame -fuzztime 5s ./internal/fednet/
	$(GO) test -count=1 -run '^$$' -fuzz FuzzDecodeRoundFrame -fuzztime 5s ./internal/fednet/

# verify-async runs the asynchronous-federation gate: the buffered-planner
# unit tests (K-of-N quorum cuts, staleness weights with w(0)=1 exact,
# aged-out rejection, deterministic tie-breaks, buffer snapshot round-trip),
# the loopback bit-identity test (async coordinator over real HTTP vs
# AsyncLocalSource, 202-buffered and 409-too_stale wire paths exercised),
# the mid-quorum WAL recovery test (buffered entries grafted back after a
# crash), the composition-refusal and goroutine-leak tests, and the -exp
# async acceptance study (at straggler rate 0.4 the async fold reaches the
# no-fault loss target while sync-drop does not, fresh path bit-identical
# to the streamed reference, rerun deterministic). -count=1 defeats the
# test cache so the gates re-execute.
verify-async:
	$(GO) vet ./internal/hfl/ ./internal/fednet/ ./internal/experiments/ ./internal/robust/
	$(GO) test -count=1 -run 'Async|PolyWeight|Stale|Buffered|FedProx' \
		./internal/hfl/ ./internal/fednet/ ./internal/experiments/ ./internal/robust/

# bench-json regenerates the perf-trajectory file for this revision: the
# wire benchmark (bytes on wire, allocs per round, per codec) plus the
# networked-runtime timings, APPENDED to $(BENCH_JSON) (entries from prior
# revisions are preserved), then diffed against the committed copy so the
# delta is visible before it lands.
BENCH_JSON ?= BENCH_10.json
bench-json:
	$(GO) run ./cmd/digfl-bench -exp wire -json $(BENCH_JSON)
	$(GO) run ./cmd/digfl-bench -exp net -json $(BENCH_JSON)
	$(GO) run ./cmd/digfl-bench -exp chaos -json $(BENCH_JSON)
	$(GO) run ./cmd/digfl-bench -exp engines -json $(BENCH_JSON)
	$(GO) run ./cmd/digfl-bench -exp async -json $(BENCH_JSON)
	git --no-pager diff --stat -- $(BENCH_JSON) || true

# verify-engines runs the contribution-engine gate: the cross-engine
# equivalence suite (truncation-disabled GTG/DPVS reproduce the exact
# per-round Shapley value to 1e-9, exact-parallel is bit-identical to
# exact, 3-seed checkpoint/resume bit-identity per engine, Lemma-3 zero
# rows under partial participation), the fednet loopback equivalence
# (every engine identical over the wire to the local trainer, /v1/score
# reporting, composition rejections), the accuracy-vs-cost acceptance
# test (gtg/dpvs recover the exact ranking at Kendall τ >= 0.9 on fewer
# utility evaluations than tmc), and the volatility determinism gate
# (the -exp volatility report rerun bit-identical across 3 seeds).
# -count=1 defeats the test cache so the gates re-execute.
verify-engines:
	$(GO) vet ./internal/shapley/ ./internal/experiments/ ./internal/fednet/ ./internal/metrics/
	$(GO) test -count=1 -run 'Engine|Truncation|Reported|AllDropped|Sampler|PooledValLoss|Kendall|Volatility|RunWrappers' \
		./internal/shapley/ ./internal/experiments/ ./internal/fednet/ ./internal/metrics/ ./internal/hfl/ ./internal/vfl/

# verify-crash runs the crash-safety gate: the deterministic chaos harness
# (seeded coordinator kills at epoch-open/mid-round/epoch-close with WAL
# recovery, plus an edge death mid-round with root failover, every
# interrupted run bit-identical to its uninterrupted reference across 3
# seeds and an uninterrupted journaled run indistinguishable from an
# unjournaled one), the WAL replay tests (streamed mid-round graft,
# torn-tail contract at every byte offset, 503-recovering rejoin with a
# goroutine-leak check), the fault-domain collision guard, and a fuzz
# smoke pass over the journal decoder (arbitrary bytes must error, never
# panic). -count=1 defeats the test cache so the kills re-execute.
verify-crash:
	$(GO) vet ./internal/fednet/ ./internal/experiments/ ./internal/faults/
	$(GO) test -count=1 -run 'WAL|Recover|Chaos|Failover|Rejoin|DomainsUnique' \
		./internal/fednet/ ./internal/experiments/ ./internal/faults/
	$(GO) test -count=1 -run '^$$' -fuzz FuzzWALReplay -fuzztime 5s ./internal/fednet/

# verify-adv runs the adversarial-robustness gate: the efficacy test (30%
# sign-flip attackers across 3 seeds — undefended run diverges >=2x while
# the defended run stays within 10% of clean, attackers rank below every
# honest participant by total phi, quarantine bans exactly the attackers,
# and the no-attack defended run is bit-identical to the baseline), the
# attack-simulator determinism tests, the screen/quarantine/Krum unit
# tests, the wire-level rejection tests, and the faults+attacks chaos
# property test. -count=1 defeats the test cache so the gate re-executes.
verify-adv:
	$(GO) vet ./internal/adversary/ ./internal/robust/
	$(GO) test -count=1 -run 'Adversar|Attack|Tamper|Quarantine|Screen|Krum|NormBound|Mutate|Poison|Fires|NonFinite|Reject' \
		./internal/adversary/ ./internal/robust/ ./internal/hfl/ ./internal/vfl/ ./internal/fednet/ ./internal/experiments/
