# Build, test and verification entry points for the digfl module.
# (stdlib-only; no tool dependencies beyond the Go toolchain)

GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# verify is the full pre-submit recipe referenced by README.md: vet every
# package and exercise every concurrent path under the race detector.
# Note: the -race run takes several minutes on small machines; scope it to
# touched packages while iterating ($(GO) test -race ./internal/<pkg>/).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
