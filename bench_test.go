package digfl_test

// One benchmark per table and figure of the paper's evaluation (Sec. V).
// Each bench regenerates its artifact through the internal/experiments
// runner and reports the headline quantities (PCC, relative error, accuracy
// lift, cost ratios) as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced rows next to the usual ns/op. Benches honour
// -short / testing.Short() by running the reduced QuickOpts configuration;
// full runs use a moderate scale that keeps the 2^n retraining ground truth
// tractable on a laptop.

import (
	"io"
	"testing"

	"digfl/internal/experiments"
)

func benchOpts(b *testing.B) experiments.Opts {
	if testing.Short() {
		return experiments.QuickOpts()
	}
	o := experiments.DefaultOpts()
	o.Scale = 0.5 // full paper-scale sweeps are CLI territory (digfl-bench)
	return o
}

// BenchmarkFig2TableII regenerates the second-term ablation: per-epoch φ vs
// φ̂ curves (Fig. 2) and the 14-dataset relative-error table (Table II).
func BenchmarkFig2TableII(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.SecondTerm(o)
		res.Render(io.Discard)
		b.ReportMetric(res.MaxRelErr(), "maxRelErr")
		b.ReportMetric(float64(len(res.Rows)), "datasets")
	}
}

// BenchmarkFig3 regenerates the HFL estimated-vs-actual study: PCC per
// dataset and the cost gap between DIG-FL and 2^n retraining.
func BenchmarkFig3(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.HFLvsActual(o)
		res.Render(io.Discard)
		var pccSum float64
		var speedup float64
		for name, pcc := range res.PCC {
			pccSum += pcc
			speedup += res.CostActual[name].Seconds() / res.CostDIGFL[name].Seconds()
		}
		n := float64(len(res.PCC))
		b.ReportMetric(pccSum/n, "meanPCC")
		b.ReportMetric(speedup/n, "speedup")
	}
}

// BenchmarkTableIII regenerates the VFL estimated-vs-actual table: PCC and
// T_DIG-FL vs T_Actual on the ten tabular datasets.
func BenchmarkTableIII(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.VFLvsActual(o)
		res.Render(io.Discard)
		b.ReportMetric(res.MeanPCC("VFL-LinReg"), "linregPCC")
		b.ReportMetric(res.MeanPCC("VFL-LogReg"), "logregPCC")
		var speedup float64
		for _, row := range res.Rows {
			speedup += row.TActual / row.TDIGFL
		}
		b.ReportMetric(speedup/float64(len(res.Rows)), "speedup")
	}
}

// BenchmarkFig4TableIV regenerates the HFL method comparison (DIG-FL vs
// TMC-Shapley, GT-Shapley, MR, IM).
func BenchmarkFig4TableIV(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.HFLComparison(o)
		res.Render(io.Discard)
		b.ReportMetric(res.MeanPCC("DIG-FL"), "DIG-FL")
		b.ReportMetric(res.MeanPCC("TMC-shapley"), "TMC")
		b.ReportMetric(res.MeanPCC("GT-shapley"), "GT")
		b.ReportMetric(res.MeanPCC("MR"), "MR")
		b.ReportMetric(res.MeanPCC("IM"), "IM")
	}
}

// BenchmarkFig5TableV regenerates the VFL method comparison (DIG-FL vs
// TMC-Shapley and GT-Shapley).
func BenchmarkFig5TableV(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.VFLComparison(o)
		res.Render(io.Discard)
		b.ReportMetric(res.MeanPCC("DIG-FL"), "DIG-FL")
		b.ReportMetric(res.MeanPCC("TMC-shapley"), "TMC")
		b.ReportMetric(res.MeanPCC("GT-shapley"), "GT")
	}
}

// BenchmarkFig6 regenerates the per-epoch estimated-vs-actual comparison.
func BenchmarkFig6(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.PerEpoch(o)
		res.Render(io.Discard)
		var pccSum float64
		for _, pcc := range res.PCC {
			pccSum += pcc
		}
		b.ReportMetric(pccSum/float64(len(res.PCC)), "meanPCC")
	}
}

// BenchmarkFig7 regenerates the reweight-mechanism study on both corruption
// types, reporting the accuracy lift at the heaviest corruption level.
func BenchmarkFig7(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		nonIID := experiments.Reweight("CIFAR10", experiments.NonIID, o)
		mislabeled := experiments.Reweight("MOTOR", experiments.Mislabeled, o)
		nonIID.Render(io.Discard)
		mislabeled.Render(io.Discard)
		lastN := nonIID.Points[len(nonIID.Points)-1]
		lastM := mislabeled.Points[len(mislabeled.Points)-1]
		b.ReportMetric(lastN.ReweighAcc-lastN.PlainAcc, "nonIIDLift")
		b.ReportMetric(lastM.ReweighAcc-lastM.PlainAcc, "mislabelLift")
	}
}
